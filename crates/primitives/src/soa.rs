//! Cache-conscious storage primitives: chunked arenas and epoch-stamped
//! slot tables.
//!
//! The contraction engine is **memory-bound**: profiling (`profile_insert`)
//! shows ~8 node-rounds of work per inserted edge at ~500 ns each, dominated
//! by random access into the node and cluster arenas. Two constant-factor
//! layout problems dominate once the asymptotics match the paper:
//!
//! 1. **Growth spikes.** A `Vec`-backed arena doubles by *copying*: at the
//!    1M-vertex scale the node arena is ~100 MB, so the unlucky batch that
//!    triggers the doubling pays a full copy — measured as ~7× batch-time
//!    spikes. [`ChunkedArena`] stores elements in fixed-size boxed chunks,
//!    so growth allocates one chunk and **never moves an existing element**
//!    (pointer stability is a documented guarantee, pinned by a property
//!    test). Batch latency becomes O(batch), not O(arena).
//!
//! 2. **Fat rows.** An array-of-structs arena drags every cold field of a
//!    record through the cache on each touch. The fix is a
//!    structure-of-arrays (SoA) split: fields touched by the hot loop (the
//!    current round's decision/adjacency/cluster, the parent pointer walked
//!    by root queries) live in their own parallel arrays, so one node-touch
//!    pulls one cache line of *hot* data; rarely-touched fields (deep round
//!    rows, spill buffers) sit in a side array and cost nothing until
//!    needed. `ChunkedArena` is the building block: an SoA arena is several
//!    parallel `ChunkedArena`s sharing one index space (see
//!    `bimst-rctree::contract` for the node arena and
//!    `bimst-rctree::cluster` for the cluster arena).
//!
//! # Chunk size choice
//!
//! [`CHUNK`] (4096 elements) balances three pressures. Bigger chunks mean a
//! shorter chunk table (better locality for the outer indirection) but a
//! larger worst-case single allocation (the spike this module exists to
//! kill) and more waste for small arenas. Smaller chunks make the chunk
//! table itself cache-hostile. At 4096 elements the table for a 1M-entry
//! arena is ~256 pointers (2 KB — resident in L1 throughout a propagation),
//! while the biggest chunk of the fattest row type (~64-byte round rows) is
//! 256 KB — microseconds to allocate, invisible next to a multi-millisecond
//! batch. Power-of-two so index splitting is a shift and a mask.
//!
//! # The epoch-stamp idiom
//!
//! Hot paths repeatedly need small *transient* sets and maps over a dense
//! id space (nodes, clusters, batch edges). A hash set pays hashing on
//! every probe; a plain bitmap pays an O(domain) clear per batch. An
//! **epoch-stamped** table pays neither: each slot holds the epoch at which
//! it was last written, membership means `stamp[i] == current_epoch`, and
//! *clearing is a counter increment* — O(1), touching no memory. The only
//! O(domain) event is the epoch counter wrapping (once per 2³² resets),
//! which re-zeroes the stamps so stale marks from the previous wrap cannot
//! alias. [`EpochSet`] is the membership-only form; [`EpochSlotMap`] packs
//! the stamp and a `u32` value into one `u64` slot — probe and write are a
//! *single* memory access (e.g. `node → compact index` for the CPT
//! expansion, `vertex → dense label` for the inner MSF). Both size
//! themselves to the id-space bound, growing O(lg) times total by
//! **in-place** power-of-two resizes: the already-faulted pages are kept,
//! because throwing the table away and re-faulting tens of megabytes
//! lazily is exactly the kind of multi-batch latency smear the chunked
//! arenas exist to prevent (the epoch bump that precedes the resize
//! invalidates every old mark, so keeping the bytes is sound).

/// Elements per chunk of a [`ChunkedArena`] (see the module docs for the
/// sizing rationale). Must be a power of two.
pub const CHUNK: usize = 4096;

const CHUNK_SHIFT: usize = CHUNK.trailing_zeros() as usize;
const CHUNK_MASK: usize = CHUNK - 1;

/// A growable arena stored as fixed-size boxed chunks.
///
/// Indexing costs one extra dependent load versus `Vec` (chunk pointer,
/// then element), but the chunk table is tiny and L1-resident, and in
/// exchange:
///
/// * **Growth never relocates.** `push` past a chunk boundary allocates one
///   new chunk; every existing element keeps its address. No doubling
///   copies, no 100 MB memcpy spikes at scale, and references observed
///   across pushes stay valid (the `prop_soa` property test pins this by
///   comparing raw element addresses before and after growth).
/// * **Growth cost is O(CHUNK)**, independent of arena size — batch latency
///   stays proportional to the batch.
///
/// Slots are default-initialized when a chunk is allocated; [`ChunkedArena::push`]
/// overwrites the next slot. `clear` resets the length but keeps every
/// chunk allocated, so arenas ratchet to their high-water mark and stay
/// allocation-free in steady state, matching the engine's scratch
/// discipline.
///
/// Chunks are `Box<[T; CHUNK]>` — statically sized, so (a) the chunk table
/// holds thin pointers (half the table bytes of fat `Box<[T]>` slices) and
/// (b) the compiler knows `index & CHUNK_MASK` is in bounds, eliding the
/// inner bounds check on the hot indexing path.
#[derive(Clone, Debug, Default)]
pub struct ChunkedArena<T> {
    chunks: Vec<Box<[T; CHUNK]>>,
    len: usize,
}

impl<T: Clone + Default> ChunkedArena<T> {
    /// An empty arena (no chunks allocated).
    pub fn new() -> Self {
        ChunkedArena {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated chunks (tests; capacity = `chunks() * CHUNK`).
    pub fn chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Appends an element, returning its index. Never moves existing
    /// elements; allocates at most one `CHUNK`-sized chunk.
    #[inline]
    pub fn push(&mut self, x: T) -> usize {
        let i = self.len;
        if i >> CHUNK_SHIFT == self.chunks.len() {
            let chunk: Box<[T; CHUNK]> = vec![T::default(); CHUNK]
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| unreachable!("chunk built with CHUNK elements"));
            self.chunks.push(chunk);
        }
        self.chunks[i >> CHUNK_SHIFT][i & CHUNK_MASK] = x;
        self.len = i + 1;
        i
    }

    /// Drops all elements (keeps every chunk allocated for reuse).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Iterates over the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len).map(move |i| &self[i])
    }
}

impl<T: Clone + Default> std::ops::Index<usize> for ChunkedArena<T> {
    type Output = T;
    /// Hard bound check, like `Vec`: an index below the chunk capacity but
    /// past `len` would otherwise silently read a default/stale slot in
    /// release. Unlike a per-record length field, `self.len` lives in the
    /// arena header next to the chunk table pointer — one L1-resident
    /// compare, not an extra random cache line.
    #[inline]
    fn index(&self, i: usize) -> &T {
        assert!(i < self.len);
        &self.chunks[i >> CHUNK_SHIFT][i & CHUNK_MASK]
    }
}

impl<T: Clone + Default> std::ops::IndexMut<usize> for ChunkedArena<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len);
        &mut self.chunks[i >> CHUNK_SHIFT][i & CHUNK_MASK]
    }
}

/// An epoch-stamped membership set over a dense `usize` id space.
///
/// `reset` is O(1) (see the module docs, *The epoch-stamp idiom*). The
/// domain is set at reset time and growth allocates a fresh zeroed table
/// (no copy — resetting discards all marks anyway), so a growing id space
/// costs O(lg) allocations over the structure's lifetime.
#[derive(Debug, Default)]
pub struct EpochSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochSet {
    /// An empty set over an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the set (O(1)) and ensures ids `0..domain` are addressable.
    ///
    /// Domain growth resizes **in place** (power-of-two sizing keeps the
    /// reallocation count logarithmic) so already-faulted pages stay warm;
    /// the epoch bump below invalidates every surviving stamp, so the old
    /// bytes are harmless.
    pub fn reset(&mut self, domain: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wraparound: one O(domain) re-zero per 2³² resets, so stale
            // stamps from the previous wrap can never alias fresh ones.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        if domain > self.stamp.len() {
            let cap = domain.next_power_of_two();
            if self.stamp.is_empty() {
                // First sizing: `vec![0; _]` goes through `alloc_zeroed`
                // (lazily-faulted zero pages), so a sparse workload only
                // ever pays for the pages it touches. An explicit `resize`
                // here would memset — and fault — the whole table up
                // front, a multi-millisecond spike on a 1M-id domain.
                self.stamp = vec![0; cap];
            } else {
                self.stamp.resize(cap, 0);
            }
        }
    }

    /// Current domain bound (exclusive).
    pub fn domain(&self) -> usize {
        self.stamp.len()
    }

    /// Forces the epoch counter (wraparound boundary tests only).
    #[doc(hidden)]
    pub fn force_epoch_for_tests(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Inserts `i`; returns whether it was newly inserted this epoch.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.stamp.len(), "id {i} outside epoch-set domain");
        let fresh = self.stamp[i] != self.epoch;
        self.stamp[i] = self.epoch;
        fresh
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.stamp.get(i).is_some_and(|&s| s == self.epoch)
    }
}

/// An epoch-stamped `id → u32` map over a dense `usize` id space.
///
/// The map form of [`EpochSet`]: `reset` is O(1) and lookups are
/// hash-free. Stamp and value are packed into one `u64` slot
/// (`stamp << 32 | value`), so a probe or a write is a **single** memory
/// access — on the cold, randomly-indexed tables these maps exist for,
/// a split stamp/value layout would double the cache misses. This is the
/// "dense-slot indirection" used on the CPT query path
/// (`node → compact index`) and the inner-MSF relabeling
/// (`vertex → dense label`).
#[derive(Debug, Default)]
pub struct EpochSlotMap {
    slot: Vec<u64>,
    epoch: u32,
}

impl EpochSlotMap {
    /// An empty map over an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the map (O(1)) and ensures ids `0..domain` are addressable.
    /// Domain growth resizes in place, like [`EpochSet::reset`].
    pub fn reset(&mut self, domain: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.slot.fill(0);
            self.epoch = 1;
        }
        if domain > self.slot.len() {
            let cap = domain.next_power_of_two();
            if self.slot.is_empty() {
                // Lazily-faulted first allocation — see [`EpochSet::reset`].
                self.slot = vec![0; cap];
            } else {
                self.slot.resize(cap, 0);
            }
        }
    }

    /// Current domain bound (exclusive).
    pub fn domain(&self) -> usize {
        self.slot.len()
    }

    /// Forces the epoch counter (wraparound boundary tests only).
    #[doc(hidden)]
    pub fn force_epoch_for_tests(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Maps `i` to `v` (inserting or overwriting).
    #[inline]
    pub fn set(&mut self, i: usize, v: u32) {
        debug_assert!(i < self.slot.len(), "id {i} outside slot-map domain");
        self.slot[i] = ((self.epoch as u64) << 32) | v as u64;
    }

    /// The value mapped to `i` this epoch, if any.
    #[inline]
    pub fn get(&self, i: usize) -> Option<u32> {
        debug_assert!(i < self.slot.len(), "id {i} outside slot-map domain");
        let s = self.slot[i];
        ((s >> 32) as u32 == self.epoch).then_some(s as u32)
    }
}

/// A frontier-packed gather buffer: the **round-major** view of a sparse
/// working set over a dense id space.
///
/// The contraction round loop processes round `r` over a *frontier* — a
/// small, data-dependent subset of the node-id space. Stored node-major
/// (one row per node, indexed by node id), every row touch in the round is
/// a random access that pulls one cold cache line per node; stored
/// **round-major** — the frontier's round-`r` rows gathered into one dense
/// array — the round's repeated row reads (a row is probed ~4–7× per
/// round: neighborhood building, decisions reading each neighbor's degree,
/// the dying/surviving partition, the plan phases) hit a compact packed
/// array instead. The gather pays the one cold load per row the first
/// touch would have paid anyway; every re-touch after that costs a probe
/// of the index table (8 ids per cache line) plus a packed-row read.
///
/// Built from this module's own primitives: the `id → packed index` side
/// is an [`EpochSlotMap`] (reset per round is O(1), probe and write are a
/// single memory access), and the packed rows live in a [`ChunkedArena`]
/// (growth never relocates, `clear` keeps chunks), so [`PackedRounds::begin`]
/// is O(1) and steady-state rounds allocate nothing once the pack has seen
/// its largest frontier.
///
/// # Coherence contract
///
/// The pack is a *cache*, never the store of record: the backing arena
/// stays authoritative. Callers that mutate a backing row inside a packed
/// round must write the arena **and** either update the packed copy
/// ([`PackedRounds::get_mut`]) or re-copy it ([`PackedRounds::refresh`])
/// before the next packed read of that id. Reads of ids that were never
/// gathered must fall back to the arena ([`PackedRounds::get`] returns
/// `None`), which keeps a coverage bug a performance bug, not a
/// correctness bug.
#[derive(Debug, Default)]
pub struct PackedRounds<T> {
    idx: EpochSlotMap,
    rows: ChunkedArena<T>,
}

impl<T: Clone + Default> PackedRounds<T> {
    /// An empty pack over an empty domain.
    pub fn new() -> Self {
        PackedRounds {
            idx: EpochSlotMap::new(),
            rows: ChunkedArena::new(),
        }
    }

    /// Starts a new round: forgets every entry (O(1) — epoch bump plus a
    /// length reset) and ensures ids `0..domain` are addressable.
    pub fn begin(&mut self, domain: usize) {
        self.idx.reset(domain);
        self.rows.clear();
    }

    /// Number of packed entries this round.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no entries are packed this round.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The packed row of `id`, if `id` was gathered this round. Ids beyond
    /// the current domain (including before any [`PackedRounds::begin`])
    /// are misses, not errors — the arena-fallback read discipline relies
    /// on that.
    #[inline]
    pub fn get(&self, id: u32) -> Option<&T> {
        if id as usize >= self.idx.domain() {
            return None;
        }
        let i = self.idx.get(id as usize)?;
        Some(&self.rows[i as usize])
    }

    /// Mutable access to the packed row of `id`, if gathered this round.
    /// Callers owe the arena the same write (see *Coherence contract*).
    #[inline]
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        if id as usize >= self.idx.domain() {
            return None;
        }
        let i = self.idx.get(id as usize)?;
        Some(&mut self.rows[i as usize])
    }

    /// Gathers `id` if absent, computing the row from the backing store;
    /// returns its packed index. Present ids cost one index-table probe
    /// and never re-read the store. Unlike the read/refresh side, `id`
    /// must be inside the domain of the last [`PackedRounds::begin`] —
    /// gathering into an inactive pack is a caller bug, not a miss.
    #[inline]
    pub fn insert_with(&mut self, id: u32, row: impl FnOnce() -> T) -> usize {
        if let Some(i) = self.idx.get(id as usize) {
            return i as usize;
        }
        let i = self.rows.push(row());
        self.idx.set(id as usize, i as u32);
        i
    }

    /// Re-copies the packed row of `id` from the backing store's value
    /// after an arena write. Returns whether `id` was packed (absent ids
    /// — including ids beyond the current domain, as after an inactive
    /// `begin(0)` — are a no-op: the arena fallback already serves them
    /// correctly).
    #[inline]
    pub fn refresh(&mut self, id: u32, row: T) -> bool {
        if id as usize >= self.idx.domain() {
            return false;
        }
        match self.idx.get(id as usize) {
            Some(i) => {
                self.rows[i as usize] = row;
                true
            }
            None => false,
        }
    }

    /// Packed-row capacity in elements (the steady-state scratch metric;
    /// the index table is excluded — it is sized by the id-space bound,
    /// like every epoch-stamped table).
    pub fn high_water(&self) -> usize {
        self.rows.chunks() * CHUNK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_roundtrip_across_chunks() {
        let mut a: ChunkedArena<u64> = ChunkedArena::new();
        let n = 3 * CHUNK + 17;
        for i in 0..n {
            assert_eq!(a.push(i as u64 * 3), i);
        }
        assert_eq!(a.len(), n);
        assert_eq!(a.chunks(), 4);
        for i in (0..n).step_by(997) {
            assert_eq!(a[i], i as u64 * 3);
        }
        a[CHUNK] = 999;
        assert_eq!(a[CHUNK], 999);
    }

    #[test]
    fn clear_keeps_chunks() {
        let mut a: ChunkedArena<u32> = ChunkedArena::new();
        for i in 0..2 * CHUNK {
            a.push(i as u32);
        }
        let chunks = a.chunks();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.chunks(), chunks, "clear must not free chunks");
        for i in 0..CHUNK {
            a.push(i as u32);
        }
        assert_eq!(a.chunks(), chunks);
    }

    #[test]
    fn iter_matches_index_order() {
        let mut a: ChunkedArena<u16> = ChunkedArena::new();
        for i in 0..CHUNK + 5 {
            a.push(i as u16);
        }
        let v: Vec<u16> = a.iter().copied().collect();
        assert_eq!(v.len(), CHUNK + 5);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u16));
    }

    #[test]
    fn epoch_set_reset_forgets() {
        let mut s = EpochSet::new();
        s.reset(100);
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        s.reset(100);
        assert!(!s.contains(7));
        assert!(s.insert(7));
    }

    #[test]
    fn epoch_set_domain_growth() {
        let mut s = EpochSet::new();
        s.reset(10);
        s.insert(3);
        s.reset(1000); // growth discards marks and re-addresses
        assert!(s.domain() >= 1000);
        assert!(!s.contains(3));
        s.insert(999);
        assert!(s.contains(999));
    }

    #[test]
    fn slot_map_set_get_reset() {
        let mut m = EpochSlotMap::new();
        m.reset(50);
        assert_eq!(m.get(4), None);
        m.set(4, 42);
        assert_eq!(m.get(4), Some(42));
        m.set(4, 43);
        assert_eq!(m.get(4), Some(43));
        m.reset(50);
        assert_eq!(m.get(4), None);
    }
}
