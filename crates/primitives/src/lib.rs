//! Parallel primitives shared by every `bimst` crate.
//!
//! The paper analyzes its algorithms in the arbitrary-CRCW PRAM. This crate
//! provides the small toolkit we use to realize those algorithms on a
//! fork-join machine (rayon):
//!
//! * [`hash`] — deterministic, seedable mixing hashes. Every random decision
//!   in the tree-contraction substrate is a *pure function* of
//!   `(seed, object, round)`, which is what makes batch-dynamic change
//!   propagation well-defined (re-running an unaffected vertex reproduces the
//!   identical decision).
//! * [`weight`] — totally ordered edge weights with edge-id tie-breaking so
//!   minimum spanning forests are unique, plus the `-inf` phantom weight used
//!   by the ternarization spine.
//! * [`par`] — work-efficient parallel building blocks: prefix sums, packing,
//!   counting-based semisort, and grain-size helpers.
//! * [`avec`] — fixed-capacity inline vectors for the degree-≤3 adjacency
//!   lists and constant-fan-in cluster children of the ternarized substrate.
//! * [`fxmap`] — a fast non-cryptographic hasher for the integer-id maps on
//!   hot paths.
//! * [`monoid`] — the path-aggregation algebra: a [`PathMonoid`] trait
//!   (identity, associative combine, per-edge lift) with max/min/sum/hops
//!   instances and a tuple composer, so path statistics beyond the MSF's
//!   hardwired max are one trait instance, not another hand-rolled walk.
//! * [`soa`] — cache-conscious storage: chunked arenas whose growth never
//!   relocates (no doubling-copy latency spikes) and epoch-stamped dense
//!   slot tables with O(1) reset (the hash-free transient sets/maps the
//!   hot paths use). The SoA hot/cold field splits in `bimst-rctree` are
//!   built from these.

pub mod avec;
pub mod fxmap;
pub mod hash;
pub mod monoid;
pub mod par;
pub mod soa;
pub mod weight;

pub use avec::AVec;
pub use fxmap::{FxHashMap, FxHashSet};
pub use hash::{coin, hash2, hash3, mix64};
pub use monoid::{FoldKind, FoldValue, Hops, MaxW, MinW, Pair, PathMonoid, SumW};
pub use soa::{ChunkedArena, EpochSet, EpochSlotMap, PackedRounds};
pub use weight::{EdgeId, WKey, Weight, NEG_INF};

/// A vertex identifier. The substrate addresses vertices densely, `0..n`.
pub type VertexId = u32;

/// Sequential grain size under which parallel loops fall back to sequential
/// execution. Chosen to amortize rayon task overhead on ~100ns loop bodies.
pub const GRAIN: usize = 2048;
