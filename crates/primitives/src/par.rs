//! Work-efficient parallel building blocks on top of rayon.
//!
//! These mirror the PRAM primitives the paper leans on implicitly: prefix
//! sums (scan), packing/filtering, and semisorting (grouping records by key
//! without a total order requirement, used in Algorithm 2 to collect edge
//! endpoints). Everything degrades gracefully to sequential execution below
//! [`crate::GRAIN`] elements so the primitives are also fast on tiny inputs —
//! important because Algorithm 2 calls them on batches of size `ℓ`, which can
//! be as small as 1.

use rayon::prelude::*;

use crate::GRAIN;

/// Exclusive prefix sums. Returns the carry (total sum) and fills `out` such
/// that `out[i] = sum(xs[..i])`.
///
/// Two-pass blocked scan: O(n) work, O(lg n) span over blocks.
pub fn exclusive_scan(xs: &[usize], out: &mut [usize]) -> usize {
    assert_eq!(xs.len(), out.len());
    let n = xs.len();
    if n == 0 {
        return 0;
    }
    if n <= GRAIN {
        let mut acc = 0usize;
        for i in 0..n {
            out[i] = acc;
            acc += xs[i];
        }
        return acc;
    }
    let nblocks = n.div_ceil(GRAIN);
    let mut block_sums = vec![0usize; nblocks];
    xs.par_chunks(GRAIN)
        .zip(block_sums.par_iter_mut())
        .for_each(|(chunk, s)| *s = chunk.iter().sum());
    // Scan the (small) block sums sequentially.
    let mut acc = 0usize;
    for s in block_sums.iter_mut() {
        let v = *s;
        *s = acc;
        acc += v;
    }
    out.par_chunks_mut(GRAIN)
        .zip(xs.par_chunks(GRAIN))
        .zip(block_sums.par_iter())
        .for_each(|((ochunk, xchunk), &base)| {
            let mut a = base;
            for (o, &x) in ochunk.iter_mut().zip(xchunk) {
                *o = a;
                a += x;
            }
        });
    acc
}

/// Parallel filter ("pack"): returns the elements matching `pred`, in order.
pub fn pack<T: Copy + Send + Sync, F: Fn(&T) -> bool + Sync>(xs: &[T], pred: F) -> Vec<T> {
    if xs.len() <= GRAIN {
        return xs.iter().copied().filter(|x| pred(x)).collect();
    }
    xs.par_iter().copied().filter(|x| pred(x)).collect()
}

/// Parallel map into a fresh vector.
pub fn map<T: Sync, U: Send, F: Fn(&T) -> U + Sync>(xs: &[T], f: F) -> Vec<U> {
    if xs.len() <= GRAIN {
        return xs.iter().map(&f).collect();
    }
    xs.par_iter().map(&f).collect()
}

/// Parallel map into a **reused** vector: clears `out` and fills it with
/// `f(x)` for every `x` of `xs`, in input order, in parallel above the
/// grain. Once `out` has grown to its high-water capacity, calls perform no
/// heap allocation — the engine's hot loops depend on this.
///
/// The parallel path writes `f(x)` directly into the vector's spare
/// capacity (no sequential default-fill pass first — that would double the
/// memory writes of exactly the loop this function parallelizes).
pub fn map_into<T, U, F>(xs: &[T], out: &mut Vec<U>, f: F)
where
    T: Sync,
    U: Send + Copy,
    F: Fn(&T) -> U + Sync,
{
    out.clear();
    let n = xs.len();
    if n <= GRAIN {
        out.extend(xs.iter().map(&f));
        return;
    }
    out.reserve(n);
    let spare = &mut out.spare_capacity_mut()[..n];
    spare
        .par_chunks_mut(GRAIN)
        .zip(xs.par_chunks(GRAIN))
        .for_each(|(ochunk, xchunk)| {
            for (slot, x) in ochunk.iter_mut().zip(xchunk) {
                slot.write(f(x));
            }
        });
    // SAFETY: `spare` covers exactly indices 0..n of the spare capacity,
    // and the zip above pairs chunk `i` of `spare` with the equal-length
    // chunk `i` of `xs` (both are `GRAIN`-chunkings of length-`n` slices),
    // so every one of the first `n` slots was initialized.
    unsafe { out.set_len(n) };
}

/// Semisort: groups records by a `u64` key. Returns `(keys, offsets, perm)`
/// where the records with the `g`-th distinct key are
/// `perm[offsets[g]..offsets[g+1]]` (indices into `xs`), and `keys[g]` is
/// that key. Distinct keys appear in ascending order (we implement semisort
/// with a full parallel sort — stronger than required, same work up to a log
/// factor, and branch-predictable in practice).
pub fn semisort_by_key<T, F>(xs: &[T], key: F) -> (Vec<u64>, Vec<usize>, Vec<u32>)
where
    T: Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = xs.len();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    if n > GRAIN {
        idx.par_sort_unstable_by_key(|&i| key(&xs[i as usize]));
    } else {
        idx.sort_unstable_by_key(|&i| key(&xs[i as usize]));
    }
    let mut keys = Vec::new();
    let mut offsets = Vec::new();
    let mut prev: Option<u64> = None;
    for (pos, &i) in idx.iter().enumerate() {
        let k = key(&xs[i as usize]);
        if prev != Some(k) {
            keys.push(k);
            offsets.push(pos);
            prev = Some(k);
        }
    }
    offsets.push(n);
    (keys, offsets, idx)
}

/// Deduplicates a slice of `u64`s in parallel (sort + adjacent-unique).
pub fn dedup_u64s(xs: &[u64]) -> Vec<u64> {
    let mut v = xs.to_vec();
    if v.len() > GRAIN {
        v.par_sort_unstable();
    } else {
        v.sort_unstable();
    }
    v.dedup();
    v
}

/// Runs `f` on each index in `0..n`, in parallel above the grain size.
pub fn par_for<F: Fn(usize) + Sync>(n: usize, f: F) {
    if n <= GRAIN {
        for i in 0..n {
            f(i);
        }
    } else {
        (0..n).into_par_iter().for_each(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_small() {
        let xs = [1usize, 2, 3, 4];
        let mut out = [0usize; 4];
        let total = exclusive_scan(&xs, &mut out);
        assert_eq!(total, 10);
        assert_eq!(out, [0, 1, 3, 6]);
    }

    #[test]
    fn scan_empty() {
        let mut out: [usize; 0] = [];
        assert_eq!(exclusive_scan(&[], &mut out), 0);
    }

    #[test]
    fn scan_large_matches_sequential() {
        let n = 100_000;
        let xs: Vec<usize> = (0..n).map(|i| (i * 7919) % 13).collect();
        let mut out = vec![0usize; n];
        let total = exclusive_scan(&xs, &mut out);
        let mut acc = 0usize;
        for i in 0..n {
            assert_eq!(out[i], acc, "mismatch at {i}");
            acc += xs[i];
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn pack_preserves_order() {
        let xs: Vec<u32> = (0..10_000).collect();
        let evens = pack(&xs, |x| x % 2 == 0);
        assert_eq!(evens.len(), 5_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn semisort_groups_all_records() {
        let xs: Vec<(u64, u32)> = (0..5_000u32).map(|i| ((i % 37) as u64, i)).collect();
        let (keys, offsets, perm) = semisort_by_key(&xs, |x| x.0);
        assert_eq!(keys.len(), 37);
        assert_eq!(offsets.len(), 38);
        assert_eq!(perm.len(), xs.len());
        for g in 0..keys.len() {
            for p in offsets[g]..offsets[g + 1] {
                assert_eq!(xs[perm[p] as usize].0, keys[g]);
            }
        }
        // Every record appears exactly once.
        let mut seen = vec![false; xs.len()];
        for &p in &perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    fn dedup_sorts_and_uniques() {
        let xs = [5u64, 1, 5, 2, 2, 9];
        assert_eq!(dedup_u64s(&xs), vec![1, 2, 5, 9]);
    }

    #[test]
    fn map_into_matches_map_and_reuses_capacity() {
        let xs: Vec<u64> = (0..10_000).collect();
        let mut out: Vec<u64> = Vec::new();
        map_into(&xs, &mut out, |&x| x * 3);
        assert_eq!(out, map(&xs, |&x| x * 3));
        let cap = out.capacity();
        map_into(&xs, &mut out, |&x| x + 1);
        assert_eq!(out[17], 18);
        assert_eq!(out.capacity(), cap, "steady-state call must not realloc");
        // Small inputs shrink the length, never the buffer.
        map_into(&xs[..5], &mut out, |&x| x);
        assert_eq!(out.len(), 5);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn par_for_covers_range() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
