//! A fixed-capacity inline vector.
//!
//! The ternarized forest guarantees degree ≤ 3 and RC-tree fan-in ≤ 6, so
//! adjacency lists and children lists fit in small inline arrays. `AVec` is a
//! minimal `ArrayVec` clone (we avoid external dependencies beyond the
//! approved set) for `Copy` element types, which is all the substrate needs.

/// Fixed-capacity vector of `Copy` elements stored inline.
#[derive(Clone, Copy, Debug)]
pub struct AVec<T: Copy + Default, const N: usize> {
    buf: [T; N],
    len: u8,
}

impl<T: Copy + Default, const N: usize> Default for AVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> AVec<T, N> {
    /// Creates an empty vector.
    #[inline]
    pub fn new() -> Self {
        debug_assert!(N <= u8::MAX as usize);
        AVec {
            buf: [T::default(); N],
            len: 0,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element. Panics if full — a capacity overflow here means a
    /// broken degree invariant upstream, which must not be silently dropped.
    #[inline]
    pub fn push(&mut self, x: T) {
        assert!((self.len as usize) < N, "AVec capacity {N} exceeded");
        self.buf[self.len as usize] = x;
        self.len += 1;
    }

    /// Removes and returns the element at `i`, swapping the last into place.
    #[inline]
    pub fn swap_remove(&mut self, i: usize) -> T {
        assert!(i < self.len as usize);
        let x = self.buf[i];
        self.len -= 1;
        self.buf[i] = self.buf[self.len as usize];
        x
    }

    /// Clears all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Element slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }

    /// Mutable element slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf[..self.len as usize]
    }

    /// Iterates over elements by value.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.as_slice().iter().copied()
    }

    /// Retains only elements matching the predicate (order not preserved).
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, mut pred: F) {
        let mut i = 0;
        while i < self.len as usize {
            if pred(&self.buf[i]) {
                i += 1;
            } else {
                self.swap_remove(i);
            }
        }
    }
}

impl<T: Copy + Default + Ord, const N: usize> AVec<T, N> {
    /// Returns the elements in sorted order (for order-insensitive diffs).
    pub fn sorted(&self) -> Self {
        let mut c = *self;
        c.as_mut_slice().sort_unstable();
        c
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for AVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<T: Copy + Default + Eq, const N: usize> Eq for AVec<T, N> {}

impl<T: Copy + Default, const N: usize> std::ops::Index<usize> for AVec<T, N> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for AVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_index() {
        let mut v: AVec<u32, 3> = AVec::new();
        assert!(v.is_empty());
        v.push(7);
        v.push(8);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 7);
        assert_eq!(v[1], 8);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn push_overflow_panics() {
        let mut v: AVec<u32, 2> = AVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn swap_remove_keeps_rest() {
        let mut v: AVec<u32, 4> = [1, 2, 3, 4].into_iter().collect();
        let x = v.swap_remove(1);
        assert_eq!(x, 2);
        let mut s = v.as_slice().to_vec();
        s.sort_unstable();
        assert_eq!(s, vec![1, 3, 4]);
    }

    #[test]
    fn retain_filters() {
        let mut v: AVec<u32, 6> = [1, 2, 3, 4, 5, 6].into_iter().collect();
        v.retain(|&x| x % 2 == 0);
        let mut s = v.as_slice().to_vec();
        s.sort_unstable();
        assert_eq!(s, vec![2, 4, 6]);
    }

    #[test]
    fn sorted_eq_is_order_insensitive() {
        let a: AVec<u32, 4> = [3, 1, 2].into_iter().collect();
        let b: AVec<u32, 4> = [2, 3, 1].into_iter().collect();
        assert_ne!(a, b);
        assert_eq!(a.sorted(), b.sorted());
    }
}
