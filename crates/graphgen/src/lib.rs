//! Synthetic graph and edge-stream generators for the experiments.
//!
//! The paper is model-theoretic (no named datasets), so the harness drives
//! every experiment with synthetic workloads chosen to exercise the
//! structures the algorithms care about:
//!
//! * [`erdos_renyi`] — uniform random endpoints: the generic dense-cycle
//!   workload for MSF maintenance.
//! * [`preferential_attachment`] — heavy-tailed degrees: stresses the
//!   ternarization spines (high-degree MSF vertices).
//! * [`grid`] — bounded-degree planar structure: long paths, deep
//!   compress chains.
//! * [`random_tree`] / [`path`] / [`star`] — forest-shaped extremes.
//! * [`EdgeStream`] — a timestamped infinite stream over any topology, cut
//!   into arbitrary insert batches for the sliding-window experiments; the
//!   stream position is `τ(e)`, exactly the paper's recency weight.
//!
//! All generators are deterministic given their seed (ChaCha8).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A weighted edge with an id: `(u, v, weight, id)` — the tuple every layer
/// of the workspace consumes.
pub type GenEdge = (u32, u32, f64, u64);

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// `m` edges with uniform random distinct endpoints in `0..n`, weights
/// uniform in `[0, 1)`, ids `0..m`.
pub fn erdos_renyi(n: u32, m: usize, seed: u64) -> Vec<GenEdge> {
    assert!(n >= 2);
    let mut r = rng(seed);
    (0..m as u64)
        .map(|id| {
            let u = r.gen_range(0..n);
            let mut v = r.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            (u, v, r.gen::<f64>(), id)
        })
        .collect()
}

/// Preferential attachment: vertex `v` attaches to `deg_out` earlier
/// vertices chosen proportionally to degree (plus smoothing), producing a
/// heavy-tailed degree distribution.
pub fn preferential_attachment(n: u32, deg_out: usize, seed: u64) -> Vec<GenEdge> {
    assert!(n >= 2);
    let mut r = rng(seed);
    let mut targets: Vec<u32> = vec![0]; // degree-proportional urn
    let mut out = Vec::new();
    let mut id = 0u64;
    for v in 1..n {
        for _ in 0..deg_out.min(v as usize) {
            let u = if r.gen_bool(0.1) {
                r.gen_range(0..v)
            } else {
                targets[r.gen_range(0..targets.len())]
            };
            if u == v {
                continue;
            }
            out.push((u, v, r.gen::<f64>(), id));
            id += 1;
            targets.push(u);
        }
        targets.push(v);
    }
    out
}

/// `rows × cols` grid graph (4-neighborhood), random weights.
pub fn grid(rows: u32, cols: u32, seed: u64) -> Vec<GenEdge> {
    let mut r = rng(seed);
    let idx = |i: u32, j: u32| i * cols + j;
    let mut out = Vec::new();
    let mut id = 0u64;
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                out.push((idx(i, j), idx(i, j + 1), r.gen::<f64>(), id));
                id += 1;
            }
            if i + 1 < rows {
                out.push((idx(i, j), idx(i + 1, j), r.gen::<f64>(), id));
                id += 1;
            }
        }
    }
    out
}

/// A uniformly random attachment tree on `n` vertices (`n − 1` edges).
pub fn random_tree(n: u32, seed: u64) -> Vec<GenEdge> {
    let mut r = rng(seed);
    (1..n)
        .map(|v| {
            let u = r.gen_range(0..v);
            (u, v, r.gen::<f64>(), (v - 1) as u64)
        })
        .collect()
}

/// The path `0 − 1 − … − (n−1)` with random weights.
pub fn path(n: u32, seed: u64) -> Vec<GenEdge> {
    let mut r = rng(seed);
    (0..n - 1)
        .map(|i| (i, i + 1, r.gen::<f64>(), i as u64))
        .collect()
}

/// A star centered at 0 with random weights — the extreme ternarization
/// workload (one spine of length `n − 1`).
pub fn star(n: u32, seed: u64) -> Vec<GenEdge> {
    let mut r = rng(seed);
    (1..n)
        .map(|v| (0, v, r.gen::<f64>(), (v - 1) as u64))
        .collect()
}

/// An infinite timestamped edge stream over a fixed topology pool.
///
/// Edges are drawn round-robin from the pool; the `id` of the `t`-th edge
/// emitted is `t` (the stream position `τ(e)` of the paper), and the weight
/// is resampled per emission so re-traversals of the pool differ.
pub struct EdgeStream {
    pool: Vec<(u32, u32)>,
    r: ChaCha8Rng,
    t: u64,
}

impl EdgeStream {
    /// A stream cycling over the endpoints of the given topology.
    pub fn new(topology: &[GenEdge], seed: u64) -> Self {
        assert!(!topology.is_empty());
        EdgeStream {
            pool: topology.iter().map(|&(u, v, _, _)| (u, v)).collect(),
            r: rng(seed),
            t: 0,
        }
    }

    /// A stream of uniform random pairs over `0..n`.
    pub fn uniform(n: u32, seed: u64) -> Self {
        // Pool of size 1 is never used for uniform mode; keep endpoints
        // drawn fresh per emission instead.
        let mut s = EdgeStream {
            pool: Vec::new(),
            r: rng(seed),
            t: 0,
        };
        s.pool.push((0, n.max(2) - 1)); // marker; n stored via pool[0].1+1
        s
    }

    /// Current stream position (`τ` of the next edge).
    pub fn position(&self) -> u64 {
        self.t
    }

    /// Emits the next batch of `len` edges.
    pub fn next_batch(&mut self, len: usize) -> Vec<GenEdge> {
        let uniform_n = if self.pool.len() == 1 {
            Some(self.pool[0].1 + 1)
        } else {
            None
        };
        (0..len)
            .map(|_| {
                let (u, v) = match uniform_n {
                    Some(n) => {
                        let u = self.r.gen_range(0..n);
                        let mut v = self.r.gen_range(0..n - 1);
                        if v >= u {
                            v += 1;
                        }
                        (u, v)
                    }
                    None => self.pool[(self.t as usize) % self.pool.len()],
                };
                let e = (u, v, self.r.gen::<f64>(), self.t);
                self.t += 1;
                e
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_shapes() {
        let es = erdos_renyi(100, 500, 1);
        assert_eq!(es.len(), 500);
        assert!(es
            .iter()
            .all(|&(u, v, w, _)| u != v && u < 100 && v < 100 && (0.0..1.0).contains(&w)));
        // Ids are sequential.
        assert!(es
            .iter()
            .enumerate()
            .all(|(i, &(_, _, _, id))| id == i as u64));
        // Deterministic.
        assert_eq!(erdos_renyi(100, 500, 1), es);
        assert_ne!(erdos_renyi(100, 500, 2), es);
    }

    #[test]
    fn tree_path_star_sizes() {
        assert_eq!(random_tree(50, 3).len(), 49);
        assert_eq!(path(50, 3).len(), 49);
        assert_eq!(star(50, 3).len(), 49);
        assert!(star(50, 3).iter().all(|&(u, _, _, _)| u == 0));
        // A random tree is acyclic and spanning: check via union-find.
        let mut uf = bimst_unionfind_stub::Uf::new(50);
        for &(u, v, _, _) in &random_tree(50, 3) {
            assert!(uf.unite(u, v), "cycle in random_tree");
        }
    }

    #[test]
    fn grid_edge_count() {
        let es = grid(5, 7, 1);
        assert_eq!(es.len(), (5 * 6 + 4 * 7) as usize);
    }

    #[test]
    fn pa_has_heavy_tail() {
        let es = preferential_attachment(2000, 2, 9);
        let mut deg = vec![0u32; 2000];
        for &(u, v, _, _) in &es {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        assert!(max > 30, "expected a hub, max degree {max}");
    }

    #[test]
    fn stream_positions_are_tau() {
        let mut s = EdgeStream::uniform(100, 4);
        let b1 = s.next_batch(10);
        let b2 = s.next_batch(5);
        assert_eq!(b1.last().unwrap().3, 9);
        assert_eq!(b2.first().unwrap().3, 10);
        assert_eq!(s.position(), 15);
    }

    #[test]
    fn stream_over_topology_cycles_pool() {
        let topo = path(4, 1); // 3 edges
        let mut s = EdgeStream::new(&topo, 2);
        let b = s.next_batch(6);
        assert_eq!((b[0].0, b[0].1), (topo[0].0, topo[0].1));
        assert_eq!((b[3].0, b[3].1), (topo[0].0, topo[0].1));
        assert_ne!(b[0].2, b[3].2, "weights resampled per emission");
    }

    /// Local tiny union-find to avoid a dev-dependency.
    mod bimst_unionfind_stub {
        pub struct Uf(Vec<u32>);
        impl Uf {
            pub fn new(n: usize) -> Self {
                Uf((0..n as u32).collect())
            }
            fn find(&mut self, mut x: u32) -> u32 {
                while self.0[x as usize] != x {
                    x = self.0[x as usize];
                }
                x
            }
            pub fn unite(&mut self, a: u32, b: u32) -> bool {
                let (ra, rb) = (self.find(a), self.find(b));
                if ra == rb {
                    return false;
                }
                self.0[ra as usize] = rb;
                true
            }
        }
    }
}
