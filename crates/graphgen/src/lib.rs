//! Synthetic graph and edge-stream generators for the experiments.
//!
//! The paper is model-theoretic (no named datasets), so the harness drives
//! every experiment with synthetic workloads chosen to exercise the
//! structures the algorithms care about:
//!
//! * [`erdos_renyi`] — uniform random endpoints: the generic dense-cycle
//!   workload for MSF maintenance.
//! * [`preferential_attachment`] — heavy-tailed degrees: stresses the
//!   ternarization spines (high-degree MSF vertices).
//! * [`grid`] — bounded-degree planar structure: long paths, deep
//!   compress chains.
//! * [`random_tree`] / [`path`] / [`star`] — forest-shaped extremes.
//! * [`EdgeStream`] — a timestamped infinite stream over any topology, cut
//!   into arbitrary insert batches for the sliding-window experiments; the
//!   stream position is `τ(e)`, exactly the paper's recency weight.
//! * [`MixedStream`] — a mixed read/write **operation** stream: insert
//!   batches, expirations, and query batches interleaved over any of the
//!   above topologies, for driving the batch-parallel query engine
//!   (`bimst-query`) under serving-style workloads.
//!
//! All generators are deterministic given their seed (ChaCha8).

use bimst_primitives::monoid::FoldKind;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A weighted edge with an id: `(u, v, weight, id)` — the tuple every layer
/// of the workspace consumes.
pub type GenEdge = (u32, u32, f64, u64);

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// `m` edges with uniform random distinct endpoints in `0..n`, weights
/// uniform in `[0, 1)`, ids `0..m`.
pub fn erdos_renyi(n: u32, m: usize, seed: u64) -> Vec<GenEdge> {
    assert!(n >= 2);
    let mut r = rng(seed);
    (0..m as u64)
        .map(|id| {
            let u = r.gen_range(0..n);
            let mut v = r.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            (u, v, r.gen::<f64>(), id)
        })
        .collect()
}

/// Preferential attachment: vertex `v` attaches to `deg_out` earlier
/// vertices chosen proportionally to degree (plus smoothing), producing a
/// heavy-tailed degree distribution.
pub fn preferential_attachment(n: u32, deg_out: usize, seed: u64) -> Vec<GenEdge> {
    assert!(n >= 2);
    let mut r = rng(seed);
    let mut targets: Vec<u32> = vec![0]; // degree-proportional urn
    let mut out = Vec::new();
    let mut id = 0u64;
    for v in 1..n {
        for _ in 0..deg_out.min(v as usize) {
            let u = if r.gen_bool(0.1) {
                r.gen_range(0..v)
            } else {
                targets[r.gen_range(0..targets.len())]
            };
            if u == v {
                continue;
            }
            out.push((u, v, r.gen::<f64>(), id));
            id += 1;
            targets.push(u);
        }
        targets.push(v);
    }
    out
}

/// `rows × cols` grid graph (4-neighborhood), random weights.
pub fn grid(rows: u32, cols: u32, seed: u64) -> Vec<GenEdge> {
    let mut r = rng(seed);
    let idx = |i: u32, j: u32| i * cols + j;
    let mut out = Vec::new();
    let mut id = 0u64;
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                out.push((idx(i, j), idx(i, j + 1), r.gen::<f64>(), id));
                id += 1;
            }
            if i + 1 < rows {
                out.push((idx(i, j), idx(i + 1, j), r.gen::<f64>(), id));
                id += 1;
            }
        }
    }
    out
}

/// A uniformly random attachment tree on `n` vertices (`n − 1` edges).
pub fn random_tree(n: u32, seed: u64) -> Vec<GenEdge> {
    let mut r = rng(seed);
    (1..n)
        .map(|v| {
            let u = r.gen_range(0..v);
            (u, v, r.gen::<f64>(), (v - 1) as u64)
        })
        .collect()
}

/// The path `0 − 1 − … − (n−1)` with random weights.
pub fn path(n: u32, seed: u64) -> Vec<GenEdge> {
    let mut r = rng(seed);
    (0..n - 1)
        .map(|i| (i, i + 1, r.gen::<f64>(), i as u64))
        .collect()
}

/// A star centered at 0 with random weights — the extreme ternarization
/// workload (one spine of length `n − 1`).
pub fn star(n: u32, seed: u64) -> Vec<GenEdge> {
    let mut r = rng(seed);
    (1..n)
        .map(|v| (0, v, r.gen::<f64>(), (v - 1) as u64))
        .collect()
}

/// An infinite timestamped edge stream over a fixed topology pool.
///
/// Edges are drawn round-robin from the pool; the `id` of the `t`-th edge
/// emitted is `t` (the stream position `τ(e)` of the paper), and the weight
/// is resampled per emission so re-traversals of the pool differ.
pub struct EdgeStream {
    pool: Vec<(u32, u32)>,
    r: ChaCha8Rng,
    t: u64,
}

impl EdgeStream {
    /// A stream cycling over the endpoints of the given topology.
    pub fn new(topology: &[GenEdge], seed: u64) -> Self {
        assert!(!topology.is_empty());
        EdgeStream {
            pool: topology.iter().map(|&(u, v, _, _)| (u, v)).collect(),
            r: rng(seed),
            t: 0,
        }
    }

    /// A stream of uniform random pairs over `0..n`.
    pub fn uniform(n: u32, seed: u64) -> Self {
        // Pool of size 1 is never used for uniform mode; keep endpoints
        // drawn fresh per emission instead.
        let mut s = EdgeStream {
            pool: Vec::new(),
            r: rng(seed),
            t: 0,
        };
        s.pool.push((0, n.max(2) - 1)); // marker; n stored via pool[0].1+1
        s
    }

    /// Current stream position (`τ` of the next edge).
    pub fn position(&self) -> u64 {
        self.t
    }

    /// Emits the next batch of `len` edges.
    pub fn next_batch(&mut self, len: usize) -> Vec<GenEdge> {
        let uniform_n = if self.pool.len() == 1 {
            Some(self.pool[0].1 + 1)
        } else {
            None
        };
        (0..len)
            .map(|_| {
                let (u, v) = match uniform_n {
                    Some(n) => {
                        let u = self.r.gen_range(0..n);
                        let mut v = self.r.gen_range(0..n - 1);
                        if v >= u {
                            v += 1;
                        }
                        (u, v)
                    }
                    None => self.pool[(self.t as usize) % self.pool.len()],
                };
                let e = (u, v, self.r.gen::<f64>(), self.t);
                self.t += 1;
                e
            })
            .collect()
    }
}

/// One operation of a mixed read/write workload (see [`MixedStream`]).
///
/// Insert/expire operations target a sliding-window structure (which
/// assigns stream positions and recency weights itself); query operations
/// are batches for the `bimst-query` executor.
///
/// Non-exhaustive: op streams grow kinds over time (most recently
/// [`Op::PathFoldQueries`]); downstream matches must carry a wildcard arm
/// and decide locally whether an unknown kind is skippable or fatal.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Op {
    /// Append these edges on the new side of the window.
    Insert(Vec<(u32, u32)>),
    /// Expire the Δ oldest stream positions.
    Expire(u64),
    /// Batch of window-connectivity queries.
    ConnectedQueries(Vec<(u32, u32)>),
    /// Batch of path-max queries against the MSF.
    PathMaxQueries(Vec<(u32, u32)>),
    /// Batch of component-size queries.
    ComponentSizeQueries(Vec<u32>),
    /// Batch of window-connectivity queries tagged with the tenant id
    /// whose window they are asked against (multi-tenant serving).
    TenantConnectedQueries(u32, Vec<(u32, u32)>),
    /// Batch of window path-fold queries of the given kind (emitted only
    /// by fold-enabled streams, [`MixedStream::with_folds`]).
    PathFoldQueries(FoldKind, Vec<(u32, u32)>),
}

/// Topology the endpoints of a [`MixedStream`] are drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixedTopology {
    /// Uniform random endpoints (the generic dense-cycle workload).
    ErdosRenyi,
    /// Preferential-attachment pool: heavy-tailed degrees, stresses the
    /// ternarization spines.
    PowerLaw,
    /// 2-D grid pool: long paths, deep compress chains.
    Grid,
}

/// Shape of a [`MixedStream`] workload.
#[derive(Clone, Copy, Debug)]
pub struct MixedConfig {
    /// Vertex count.
    pub n: u32,
    /// Endpoint distribution.
    pub topology: MixedTopology,
    /// Edges per insert batch.
    pub insert_batch: usize,
    /// Queries per query batch.
    pub query_batch: usize,
    /// Query batches issued between consecutive insert batches.
    pub queries_per_insert: usize,
    /// Sliding-window width in stream positions; `0` = insert-only (no
    /// [`Op::Expire`] is ever emitted).
    pub window: u64,
    /// Number of logical tenants tagging connectivity query batches. `0` =
    /// untagged ([`Op::ConnectedQueries`]); when positive, connectivity
    /// batches become [`Op::TenantConnectedQueries`] rotating through
    /// tenant ids `0..tenants`. Other query kinds are unaffected.
    pub tenants: u32,
}

impl MixedConfig {
    /// A serving-style default: ER endpoints, write batches of 4096,
    /// read-mostly (4 query batches per insert), fixed window of
    /// `16 × insert_batch`.
    pub fn serving(n: u32) -> Self {
        MixedConfig {
            n,
            topology: MixedTopology::ErdosRenyi,
            insert_batch: 4096,
            query_batch: 4096,
            queries_per_insert: 4,
            window: 16 * 4096,
            tenants: 0,
        }
    }
}

/// A deterministic mixed read/write operation stream.
///
/// Each round emits one [`Op::Insert`], then `queries_per_insert` query
/// batches rotating through the query kinds (three by default, plus
/// [`Op::PathFoldQueries`] for [`MixedStream::with_folds`] streams), then
/// (in sliding mode)
/// one [`Op::Expire`] sized to hold the window at `cfg.window`. Query
/// endpoints are a half/half mix of uniform vertices and endpoints of
/// recently inserted edges, so query batches hit warm components the way a
/// serving workload does rather than mostly asking about isolated vertices.
pub struct MixedStream {
    cfg: MixedConfig,
    /// Endpoint pool for non-uniform topologies (empty for ER).
    pool: Vec<(u32, u32)>,
    r: ChaCha8Rng,
    /// Stream positions emitted so far.
    t: u64,
    /// Positions already expired.
    tw: u64,
    /// Recently inserted endpoint pairs (ring, capped).
    recent: Vec<(u32, u32)>,
    recent_at: usize,
    /// Position in the per-round phase cycle.
    phase: usize,
    /// Rotation of the query kinds across query batches.
    qkind: usize,
    /// Rotation of tenant ids across tagged connectivity batches.
    tenant: u32,
    /// Whether the kind rotation includes [`Op::PathFoldQueries`]
    /// (constructor-gated, not a [`MixedConfig`] field: plain `(cfg, seed)`
    /// streams must stay bit-identical across releases for the paired
    /// benchmark protocol).
    folds: bool,
    /// Rotation of fold kinds across fold batches.
    fold_rot: usize,
}

impl MixedStream {
    /// A fresh stream. Identical `(cfg, seed)` give identical op sequences.
    pub fn new(cfg: MixedConfig, seed: u64) -> Self {
        assert!(cfg.n >= 2 && cfg.insert_batch > 0);
        let pool = match cfg.topology {
            MixedTopology::ErdosRenyi => Vec::new(),
            MixedTopology::PowerLaw => preferential_attachment(cfg.n, 2, seed ^ 0x9e37)
                .into_iter()
                .map(|(u, v, _, _)| (u, v))
                .collect(),
            MixedTopology::Grid => {
                // side² ≤ n keeps every pool endpoint inside the vertex
                // range; a grid needs at least a 2×2 square.
                let side = (cfg.n as f64).sqrt() as u32;
                assert!(side >= 2, "Grid topology needs n >= 4");
                grid(side, side, seed ^ 0x9e37)
                    .into_iter()
                    .map(|(u, v, _, _)| (u, v))
                    .collect()
            }
        };
        MixedStream {
            cfg,
            pool,
            r: rng(seed),
            t: 0,
            tw: 0,
            recent: Vec::new(),
            recent_at: 0,
            phase: 0,
            qkind: 0,
            tenant: 0,
            folds: false,
            fold_rot: 0,
        }
    }

    /// A stream whose query-kind rotation also emits
    /// [`Op::PathFoldQueries`] batches, cycling the fold kind through
    /// [`FoldKind::ALL`]. A separate constructor rather than a
    /// [`MixedConfig`] field so that every existing `(cfg, seed)` stream
    /// keeps its exact historical op sequence (the paired pre/post
    /// benchmark protocol depends on that bit-stability).
    pub fn with_folds(cfg: MixedConfig, seed: u64) -> Self {
        let mut s = Self::new(cfg, seed);
        s.folds = true;
        s
    }

    /// The configuration this stream was built with.
    pub fn config(&self) -> &MixedConfig {
        &self.cfg
    }

    fn endpoints(&mut self) -> (u32, u32) {
        if self.pool.is_empty() {
            let n = self.cfg.n;
            let u = self.r.gen_range(0..n);
            let mut v = self.r.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            (u, v)
        } else {
            self.pool[self.r.gen_range(0..self.pool.len())]
        }
    }

    /// A query vertex: half the time uniform, half the time an endpoint of
    /// a recently inserted edge.
    fn query_vertex(&mut self) -> u32 {
        if !self.recent.is_empty() && self.r.gen_bool(0.5) {
            let (u, v) = self.recent[self.r.gen_range(0..self.recent.len())];
            if self.r.gen_bool(0.5) {
                u
            } else {
                v
            }
        } else {
            self.r.gen_range(0..self.cfg.n)
        }
    }

    /// Emits the next operation of the cycle.
    pub fn next_op(&mut self) -> Op {
        let q = self.cfg.queries_per_insert;
        let sliding = self.cfg.window > 0;
        // Phases: 0 = insert, 1..=q = query batches, q+1 = expire (sliding).
        let phases = 1 + q + usize::from(sliding);
        let phase = self.phase;
        self.phase = (self.phase + 1) % phases;
        if phase == 0 {
            let batch: Vec<(u32, u32)> = (0..self.cfg.insert_batch)
                .map(|_| self.endpoints())
                .collect();
            self.t += batch.len() as u64;
            for &e in &batch {
                if self.recent.len() < 4096 {
                    self.recent.push(e);
                } else {
                    self.recent[self.recent_at % 4096] = e;
                    self.recent_at += 1;
                }
            }
            return Op::Insert(batch);
        }
        if sliding && phase == phases - 1 {
            let overflow = self.t.saturating_sub(self.cfg.window);
            let delta = overflow.saturating_sub(self.tw);
            self.tw = overflow.max(self.tw);
            return Op::Expire(delta);
        }
        let len = self.cfg.query_batch;
        let kind = self.qkind;
        self.qkind = (self.qkind + 1) % if self.folds { 4 } else { 3 };
        if kind == 3 {
            let fk = FoldKind::ALL[self.fold_rot];
            self.fold_rot = (self.fold_rot + 1) % FoldKind::ALL.len();
            return Op::PathFoldQueries(
                fk,
                (0..len)
                    .map(|_| (self.query_vertex(), self.query_vertex()))
                    .collect(),
            );
        }
        match kind {
            0 => {
                let qs: Vec<(u32, u32)> = (0..len)
                    .map(|_| (self.query_vertex(), self.query_vertex()))
                    .collect();
                if self.cfg.tenants > 0 {
                    let tenant = self.tenant;
                    self.tenant = (self.tenant + 1) % self.cfg.tenants;
                    Op::TenantConnectedQueries(tenant, qs)
                } else {
                    Op::ConnectedQueries(qs)
                }
            }
            1 => Op::PathMaxQueries(
                (0..len)
                    .map(|_| (self.query_vertex(), self.query_vertex()))
                    .collect(),
            ),
            _ => Op::ComponentSizeQueries((0..len).map(|_| self.query_vertex()).collect()),
        }
    }

    /// Convenience: the next `count` operations.
    pub fn take_ops(&mut self, count: usize) -> Vec<Op> {
        (0..count).map(|_| self.next_op()).collect()
    }
}

/// A `MixedStream` is an infinite operation iterator — the adapter that
/// lets a serving layer drain it straight into an op channel
/// (`stream.by_ref().take(k)` for a bounded drive, or feed
/// `bimst-service`'s submit loop until backpressure says stop).
impl Iterator for MixedStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_shapes() {
        let es = erdos_renyi(100, 500, 1);
        assert_eq!(es.len(), 500);
        assert!(es
            .iter()
            .all(|&(u, v, w, _)| u != v && u < 100 && v < 100 && (0.0..1.0).contains(&w)));
        // Ids are sequential.
        assert!(es
            .iter()
            .enumerate()
            .all(|(i, &(_, _, _, id))| id == i as u64));
        // Deterministic.
        assert_eq!(erdos_renyi(100, 500, 1), es);
        assert_ne!(erdos_renyi(100, 500, 2), es);
    }

    #[test]
    fn tree_path_star_sizes() {
        assert_eq!(random_tree(50, 3).len(), 49);
        assert_eq!(path(50, 3).len(), 49);
        assert_eq!(star(50, 3).len(), 49);
        assert!(star(50, 3).iter().all(|&(u, _, _, _)| u == 0));
        // A random tree is acyclic and spanning: check via union-find.
        let mut uf = bimst_unionfind_stub::Uf::new(50);
        for &(u, v, _, _) in &random_tree(50, 3) {
            assert!(uf.unite(u, v), "cycle in random_tree");
        }
    }

    #[test]
    fn grid_edge_count() {
        let es = grid(5, 7, 1);
        assert_eq!(es.len(), (5 * 6 + 4 * 7) as usize);
    }

    #[test]
    fn pa_has_heavy_tail() {
        let es = preferential_attachment(2000, 2, 9);
        let mut deg = vec![0u32; 2000];
        for &(u, v, _, _) in &es {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        assert!(max > 30, "expected a hub, max degree {max}");
    }

    #[test]
    fn stream_positions_are_tau() {
        let mut s = EdgeStream::uniform(100, 4);
        let b1 = s.next_batch(10);
        let b2 = s.next_batch(5);
        assert_eq!(b1.last().unwrap().3, 9);
        assert_eq!(b2.first().unwrap().3, 10);
        assert_eq!(s.position(), 15);
    }

    #[test]
    fn stream_over_topology_cycles_pool() {
        let topo = path(4, 1); // 3 edges
        let mut s = EdgeStream::new(&topo, 2);
        let b = s.next_batch(6);
        assert_eq!((b[0].0, b[0].1), (topo[0].0, topo[0].1));
        assert_eq!((b[3].0, b[3].1), (topo[0].0, topo[0].1));
        assert_ne!(b[0].2, b[3].2, "weights resampled per emission");
    }

    #[test]
    fn mixed_stream_cycle_and_determinism() {
        let cfg = MixedConfig {
            n: 100,
            topology: MixedTopology::ErdosRenyi,
            insert_batch: 8,
            query_batch: 5,
            queries_per_insert: 3,
            window: 16,
            tenants: 0,
        };
        let ops = MixedStream::new(cfg, 7).take_ops(10);
        // Round shape: Insert, 3 query batches, Expire, repeat.
        assert!(matches!(ops[0], Op::Insert(ref b) if b.len() == 8));
        assert!(matches!(ops[1], Op::ConnectedQueries(ref q) if q.len() == 5));
        assert!(matches!(ops[2], Op::PathMaxQueries(_)));
        assert!(matches!(ops[3], Op::ComponentSizeQueries(_)));
        assert!(matches!(ops[4], Op::Expire(0))); // still under the window
        assert!(matches!(ops[5], Op::Insert(_)));
        assert!(matches!(ops[9], Op::Expire(d) if d == 0));
        // Deterministic; seed-sensitive.
        assert_eq!(MixedStream::new(cfg, 7).take_ops(10), ops);
        assert_ne!(MixedStream::new(cfg, 8).take_ops(10), ops);
        // Expire totals track the window: after r inserts of 8, expired
        // positions must equal max(0, 8r - 16).
        let mut s = MixedStream::new(cfg, 7);
        let mut inserted = 0u64;
        let mut expired = 0u64;
        for op in s.take_ops(50) {
            match op {
                Op::Insert(b) => inserted += b.len() as u64,
                Op::Expire(d) => {
                    expired += d;
                    assert_eq!(expired, inserted.saturating_sub(16));
                }
                _ => {}
            }
        }
        assert!(expired > 0);
    }

    #[test]
    fn mixed_stream_insert_only_never_expires() {
        let cfg = MixedConfig {
            window: 0,
            ..MixedConfig::serving(50)
        };
        let ops = MixedStream::new(cfg, 3).take_ops(20);
        assert!(ops.iter().all(|op| !matches!(op, Op::Expire(_))));
    }

    #[test]
    fn mixed_stream_pool_topologies_stay_in_range() {
        // Non-square n values included: the grid pool must clamp to
        // side² ≤ n, not round up past the vertex range.
        for n in [4u32, 5, 7, 400, 401] {
            for topo in [MixedTopology::PowerLaw, MixedTopology::Grid] {
                let cfg = MixedConfig {
                    topology: topo,
                    ..MixedConfig::serving(n)
                };
                let mut s = MixedStream::new(cfg, 5);
                for op in s.take_ops(12) {
                    let ok = match op {
                        Op::Insert(b) => b.iter().all(|&(u, v)| u < n && v < n && u != v),
                        Op::ConnectedQueries(q)
                        | Op::PathMaxQueries(q)
                        | Op::TenantConnectedQueries(_, q)
                        | Op::PathFoldQueries(_, q) => q.iter().all(|&(u, v)| u < n && v < n),
                        Op::ComponentSizeQueries(q) => q.iter().all(|&v| v < n),
                        Op::Expire(_) => true,
                    };
                    assert!(ok, "out-of-range endpoint from {topo:?} at n={n}");
                }
            }
        }
    }

    #[test]
    fn mixed_stream_tenant_tagging() {
        let cfg = MixedConfig {
            tenants: 3,
            ..MixedConfig::serving(50)
        };
        let ops = MixedStream::new(cfg, 9).take_ops(60);
        // Connectivity batches are tagged and rotate tenant ids 0..3; the
        // plain variant never appears; other kinds are untouched.
        let tags: Vec<u32> = ops
            .iter()
            .filter_map(|op| match op {
                Op::TenantConnectedQueries(t, q) => {
                    assert_eq!(q.len(), cfg.query_batch);
                    Some(*t)
                }
                Op::ConnectedQueries(_) => panic!("untagged batch with tenants > 0"),
                _ => None,
            })
            .collect();
        assert!(tags.len() >= 3);
        assert!(tags.iter().zip(&tags[1..]).all(|(a, b)| (a + 1) % 3 == *b));
        assert!(ops.iter().any(|op| matches!(op, Op::PathMaxQueries(_))));
        // tenants == 0 keeps the untagged kind.
        let untagged = MixedStream::new(MixedConfig::serving(50), 9).take_ops(60);
        assert!(untagged
            .iter()
            .all(|op| !matches!(op, Op::TenantConnectedQueries(..))));
    }

    #[test]
    fn mixed_stream_with_folds_rotates_kinds() {
        let cfg = MixedConfig {
            queries_per_insert: 8,
            ..MixedConfig::serving(50)
        };
        let ops = MixedStream::with_folds(cfg, 7).take_ops(80);
        // Fold batches appear, cycling FoldKind::ALL in order, full-sized.
        let kinds: Vec<FoldKind> = ops
            .iter()
            .filter_map(|op| match op {
                Op::PathFoldQueries(k, q) => {
                    assert_eq!(q.len(), cfg.query_batch);
                    Some(*k)
                }
                _ => None,
            })
            .collect();
        assert!(kinds.len() >= 4, "expected several fold batches");
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(*k, FoldKind::ALL[i % 4]);
        }
        // The other kinds still appear.
        assert!(ops.iter().any(|op| matches!(op, Op::ConnectedQueries(_))));
        assert!(ops.iter().any(|op| matches!(op, Op::PathMaxQueries(_))));
        // Deterministic, and the plain constructor never emits folds.
        assert_eq!(MixedStream::with_folds(cfg, 7).take_ops(80), ops);
        assert!(MixedStream::new(cfg, 7)
            .take_ops(80)
            .iter()
            .all(|op| !matches!(op, Op::PathFoldQueries(..))));
    }

    #[test]
    #[should_panic(expected = "Grid topology needs n >= 4")]
    fn mixed_stream_grid_rejects_tiny_n() {
        let cfg = MixedConfig {
            topology: MixedTopology::Grid,
            ..MixedConfig::serving(3)
        };
        MixedStream::new(cfg, 1);
    }

    /// Local tiny union-find to avoid a dev-dependency.
    mod bimst_unionfind_stub {
        pub struct Uf(Vec<u32>);
        impl Uf {
            pub fn new(n: usize) -> Self {
                Uf((0..n as u32).collect())
            }
            fn find(&mut self, mut x: u32) -> u32 {
                while self.0[x as usize] != x {
                    x = self.0[x as usize];
                }
                x
            }
            pub fn unite(&mut self, a: u32, b: u32) -> bool {
                let (ra, rb) = (self.find(a), self.find(b));
                if ra == rb {
                    return false;
                }
                self.0[ra as usize] = rb;
                true
            }
        }
    }
}
