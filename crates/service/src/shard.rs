//! The writer side of the runtime: one thread owning the window structure,
//! draining the admission queue in FIFO order with group commit for writes
//! and coalescing + fan-out for reads.
//!
//! Sequential semantics: the state after processing the queue is identical
//! to applying every admitted op one at a time in admission order, and
//! every query is answered from exactly the state at its admission point.
//! Group commit preserves this because consecutive inserts concatenate
//! stream positions and consecutive expirations add deltas
//! (`bimst_sliding::SlidingWrite`'s contract), and coalescing preserves it
//! because batch-query answers are bit-identical to the per-query loop
//! regardless of how batches are merged or range-partitioned (the
//! `bimst-query` determinism contract, pinned by `tests/prop_query.rs`).

use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;

use bimst_primitives::{FoldKind, FoldValue, VertexId, WKey};
use bimst_query::TenantRoute;
use bimst_wal::{Checkpoint, Store, SyncPolicy};

use crate::reader::{Partial, PartialResp, ReaderPool, ServeTask, Snapshot, Work};
use crate::{Answered, QueryReq, QueryResp, ServeWindow, ServiceConfig};

/// One dedicated-routed tenant plan: `(tenant, pairs, base)` where `base`
/// is the plan's offset in the concatenated dedicated answer buffer.
type DedPlan = (u32, Arc<Vec<(VertexId, VertexId)>>, usize);

/// One coalesced query: request, reply channel, admission timestamp
/// (`None` when recording is off). Shared with the replica tier, whose
/// per-replica writers coalesce and [`serve`] exactly like this one.
pub(crate) type RunEntry = (QueryReq, Sender<Answered>, Option<std::time::Instant>);

/// An admitted operation (see `ServiceHandle` for the client-side view).
pub(crate) enum Req {
    /// Append edges on the new side of the window.
    Insert(Vec<(VertexId, VertexId)>),
    /// Expire the Δ oldest stream positions.
    Expire(u64),
    /// Answer a query batch at the admission generation.
    Query {
        /// The batch.
        req: QueryReq,
        /// Where the [`Answered`] goes.
        resp: Sender<Answered>,
        /// Admission timestamp for the admission-to-answer histograms
        /// (`None` when recording is off — no clock is read).
        at: Option<std::time::Instant>,
    },
    /// Resolve with the generation once prior writes are applied.
    Barrier(Sender<u64>),
    /// Resolve with a metrics snapshot covering everything admitted (and
    /// therefore, by FIFO order, processed) before this request.
    Metrics(Sender<bimst_obs::Snapshot>),
}

/// The writer's metric handles, registered once per service on its own
/// [`bimst_obs::Recorder`] (per-instance, so parallel tests never mix
/// services). All recording is observe-only: relaxed atomic adds and
/// span timers that never branch the apply/serve paths.
pub(crate) struct SvcObs {
    /// The service's registry ([`ServiceHandle::metrics_snapshot`] serves
    /// it, folded with the window's and the process-global recorders).
    pub(crate) rec: bimst_obs::Recorder,
    /// `service_queue_depth`: admission-queue depth sampled at each
    /// dequeue (client-side submitted counter minus writer-side processed).
    queue_depth: bimst_obs::Histogram,
    /// `service_merge_width_ops`: ops merged into each group commit.
    merge_width: bimst_obs::Histogram,
    /// `service_serve_ns`: publish→serve→retire latency of each coalesced
    /// query run (one span per `serve`).
    serve_ns: bimst_obs::Histogram,
    /// `service_generation`: the writer's current generation. (These
    /// four are shared with the replica tier's per-replica writers,
    /// hence `pub(crate)`.)
    pub(crate) generation: bimst_obs::Gauge,
    /// `service_write_groups`: applied write groups (== generation
    /// increments == WAL records appended for a durable service).
    pub(crate) groups: bimst_obs::Counter,
    /// `service_ops_insert` / `service_ops_expire`: admitted write ops by
    /// kind (a group of width k counts k).
    pub(crate) ops_insert: bimst_obs::Counter,
    pub(crate) ops_expire: bimst_obs::Counter,
    /// `service_queries_*`: admitted queries by kind (a batch of q pairs
    /// counts q).
    q_conn: bimst_obs::Counter,
    q_pm: bimst_obs::Counter,
    q_cs: bimst_obs::Counter,
    q_tenant: bimst_obs::Counter,
    q_pf: bimst_obs::Counter,
    /// `service_answer_ns_*`: admission-to-answer latency by kind.
    lat_conn: bimst_obs::Histogram,
    lat_pm: bimst_obs::Histogram,
    lat_cs: bimst_obs::Histogram,
    lat_tenant: bimst_obs::Histogram,
    lat_pf: bimst_obs::Histogram,
    /// `service_tenant_shared_queries` / `service_tenant_dedicated_queries`:
    /// tenant queries by resolved route.
    tenant_shared: bimst_obs::Counter,
    tenant_dedicated: bimst_obs::Counter,
}

impl SvcObs {
    pub(crate) fn new(rec: bimst_obs::Recorder) -> Self {
        SvcObs {
            queue_depth: rec.histogram("service_queue_depth"),
            merge_width: rec.histogram("service_merge_width_ops"),
            serve_ns: rec.histogram("service_serve_ns"),
            generation: rec.gauge("service_generation"),
            groups: rec.counter("service_write_groups"),
            ops_insert: rec.counter("service_ops_insert"),
            ops_expire: rec.counter("service_ops_expire"),
            q_conn: rec.counter("service_queries_window_connected"),
            q_pm: rec.counter("service_queries_path_max"),
            q_cs: rec.counter("service_queries_component_size"),
            q_tenant: rec.counter("service_queries_tenant_connected"),
            q_pf: rec.counter("service_queries_path_fold"),
            lat_conn: rec.histogram("service_answer_ns_window_connected"),
            lat_pm: rec.histogram("service_answer_ns_path_max"),
            lat_cs: rec.histogram("service_answer_ns_component_size"),
            lat_tenant: rec.histogram("service_answer_ns_tenant_connected"),
            lat_pf: rec.histogram("service_answer_ns_path_fold"),
            tenant_shared: rec.counter("service_tenant_shared_queries"),
            tenant_dedicated: rec.counter("service_tenant_dedicated_queries"),
            rec,
        }
    }
}

/// The writer thread's durability side-car: the WAL store plus the policy
/// knobs, created by the durable `Service` constructors. The write path
/// is **log before apply**: a group's record is appended (and fsynced,
/// per policy) before `batch_insert`/`batch_expire` runs, so no applied —
/// hence query-visible — state can out-run the log. The `snapshot` fn
/// pointer (monomorphized per `W` by the constructor) is how checkpoints
/// read the structure without `writer_main` needing a `WindowCheckpoint`
/// bound for the plain in-memory case.
pub(crate) struct DurCtl<W> {
    store: Store,
    sync: SyncPolicy,
    checkpoint_every: u64,
    /// Admitted write ops since the last checkpoint.
    since: u64,
    /// `(tw, t, compact_edges)` of the structure, for checkpoints.
    snapshot: SnapshotFn<W>,
}

/// `(tw, t, compact_edges)` of a window, read when a checkpoint is due.
pub(crate) type SnapshotFn<W> = fn(&W) -> (u64, u64, Vec<(u64, VertexId, VertexId)>);

impl<W> DurCtl<W> {
    pub(crate) fn new(
        store: Store,
        sync: SyncPolicy,
        checkpoint_every: u64,
        snapshot: SnapshotFn<W>,
    ) -> Self {
        DurCtl {
            store,
            sync,
            checkpoint_every,
            since: 0,
            snapshot,
        }
    }

    /// Under `Always` the record boundary must be the op boundary, so the
    /// writer skips group-commit merging entirely.
    fn per_op(&self) -> bool {
        self.sync == SyncPolicy::Always
    }

    /// Logs one write group (the merged batch) ahead of its apply. WAL IO
    /// failure is fail-stop: a writer that cannot log must not apply, or
    /// acked-and-answered state would be silently undurable.
    fn log_insert(&mut self, edges: &[(VertexId, VertexId)], ops: u64) {
        self.store
            .append_insert(edges)
            .expect("bimst-service: WAL append failed");
        self.commit(ops);
    }

    fn log_expire(&mut self, delta: u64, ops: u64) {
        self.store
            .append_expire(delta)
            .expect("bimst-service: WAL append failed");
        self.commit(ops);
    }

    fn commit(&mut self, ops: u64) {
        if self.sync != SyncPolicy::None {
            self.store.sync().expect("bimst-service: WAL fsync failed");
        }
        self.since += ops;
    }

    /// After a group is applied: write a compacted checkpoint if the op
    /// budget since the last one is spent.
    fn maybe_checkpoint(&mut self, w: &W, generation: u64) {
        if self.checkpoint_every == 0 || self.since < self.checkpoint_every {
            return;
        }
        let (tw, t, edges) = (self.snapshot)(w);
        self.store
            .checkpoint(&Checkpoint {
                generation,
                tw,
                t,
                edges,
            })
            .expect("bimst-service: WAL checkpoint failed");
        self.since = 0;
    }
}

/// Smallest per-reader slice of a merged plan: below this, splitting costs
/// more (task envelope, channel hop) than a reader saves. The partition is
/// a fixed function of `(plan len, reader count)` — never of timing — and
/// answers are partition-independent anyway.
const MIN_SHARD: usize = 64;

/// Reusable buffers of the serve path: the per-kind merged plans and the
/// merged answer arrays. Before this existed, every dispatch allocated all
/// six afresh (the ROADMAP's "serve path still allocates per dispatch"
/// lever); now the plan buffers round-trip through the readers' `Arc`s —
/// readers drop their clones *before* signalling the join barrier (see
/// `reader_main`), so after the join `Arc::try_unwrap` deterministically
/// hands the writer its buffer back, capacity intact. Same ratchet
/// discipline as the engine scratch: capacities grow to the largest run
/// ever coalesced, then steady-state serving allocates nothing here.
#[derive(Default)]
pub(crate) struct ServeScratch {
    conn: Vec<(VertexId, VertexId)>,
    pm: Vec<(VertexId, VertexId)>,
    cs: Vec<VertexId>,
    /// Shared-routed tenant pairs, all tenants merged into one plan.
    tconn: Vec<(VertexId, VertexId)>,
    /// Per-query tenant cutoffs, parallel to `tconn`.
    tcut: Vec<u64>,
    /// Path-fold pairs, all kinds merged into one plan in run order.
    pf: Vec<(VertexId, VertexId)>,
    /// Per-query fold kinds, parallel to `pf` (readers dispatch maximal
    /// same-kind spans to the monomorphized fold).
    pfk: Vec<FoldKind>,
    conn_out: Vec<bool>,
    pm_out: Vec<Option<WKey>>,
    cs_out: Vec<usize>,
    tconn_out: Vec<bool>,
    pf_out: Vec<Option<FoldValue>>,
    /// Concatenated answers of every dedicated-routed tenant plan in the
    /// run (each plan splices at its own base offset).
    tded_out: Vec<bool>,
}

impl ServeScratch {
    /// Combined buffer capacity in elements — the steady-state metric the
    /// allocation-stability test pins (`serve_scratch_steady_state`).
    #[cfg(test)]
    pub(crate) fn high_water(&self) -> usize {
        self.conn.capacity()
            + self.pm.capacity()
            + self.cs.capacity()
            + self.tconn.capacity()
            + self.tcut.capacity()
            + self.pf.capacity()
            + self.pfk.capacity()
            + self.conn_out.capacity()
            + self.pm_out.capacity()
            + self.cs_out.capacity()
            + self.tconn_out.capacity()
            + self.tded_out.capacity()
            + self.pf_out.capacity()
    }

    /// Reclaims a merged-plan buffer from its post-join `Arc` (see the
    /// struct docs). The fallback allocation only triggers if a reader
    /// somehow still holds a clone — correct either way, but the
    /// steady-state test would catch it as capacity churn.
    fn reclaim<T>(slot: &mut Vec<T>, arc: Arc<Vec<T>>) {
        if let Ok(mut v) = Arc::try_unwrap(arc) {
            v.clear();
            *slot = v;
        }
    }
}

/// The writer loop. Runs until the admission queue disconnects (every
/// `ServiceHandle` dropped), which is what makes "admitted ⇒ processed"
/// exact: a submission that was acked is in the queue, and the queue is
/// drained to the end before the readers retire and the structure drops.
///
/// With a `DurCtl` attached, every applied write group is logged (and
/// fsynced, per policy) *before* the apply, and the final sync on loop
/// exit makes an orderly shutdown fully durable under every policy. One
/// WAL record always equals one applied group equals one generation
/// increment, so the generation recovered from the log is exactly the
/// generation the live service would have reported.
pub(crate) fn writer_main<W: ServeWindow>(
    mut w: W,
    cfg: ServiceConfig,
    rx: Receiver<Req>,
    mut generation: u64,
    mut dur: Option<DurCtl<W>>,
    rec: bimst_obs::Recorder,
) {
    let obs = SvcObs::new(rec);
    // Handle-side admission counter, paired with the writer-local
    // `processed` count below to derive the queue depth at each dequeue.
    let submitted = obs.rec.counter("service_submitted_ops");
    let mut processed = 0u64;
    // The recovered starting point is visible even before the first group.
    obs.generation.set(generation);
    let mut pool: ReaderPool<W> = ReaderPool::spawn(cfg.readers);
    let (done_tx, done_rx) = channel::<Partial>();
    // Under `Always`, records must be per-op, so group-commit merging is off.
    let merge = !dur.as_ref().is_some_and(DurCtl::per_op);
    // An op pulled while merging that belongs to the *next* step.
    let mut carry: Option<Req> = None;
    // Group-commit buffer, reused across groups.
    let mut wbuf: Vec<(VertexId, VertexId)> = Vec::new();
    // The current coalescing run of query requests, reused across runs.
    let mut run: Vec<RunEntry> = Vec::new();
    // Merged-plan/answer buffers, reused across generations.
    let mut scratch = ServeScratch::default();

    loop {
        let first = match carry.take() {
            Some(r) => r,
            None => match rx.recv() {
                Ok(r) => {
                    processed += 1;
                    if bimst_obs::enabled() {
                        obs.queue_depth
                            .record(submitted.get().saturating_sub(processed));
                    }
                    r
                }
                Err(_) => break, // all handles dropped and queue drained
            },
        };
        match first {
            Req::Insert(edges) => {
                // Group commit: merge consecutive queued inserts up to the
                // budget. Positions concatenate, so one batch_insert of the
                // merged run equals the per-op inserts — but pays the
                // O(ℓ lg(1 + n/ℓ)) batch bound once.
                wbuf.clear();
                wbuf.extend_from_slice(&edges);
                let mut ops = 1u64;
                while merge && wbuf.len() < cfg.write_budget.max(1) {
                    match rx.try_recv() {
                        Ok(Req::Insert(more)) => {
                            processed += 1;
                            wbuf.extend_from_slice(&more);
                            ops += 1;
                        }
                        Ok(other) => {
                            processed += 1;
                            carry = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                if let Some(d) = dur.as_mut() {
                    d.log_insert(&wbuf, ops);
                }
                w.batch_insert(&wbuf);
                generation += 1;
                obs.groups.inc();
                obs.ops_insert.add(ops);
                obs.merge_width.record(ops);
                obs.generation.set(generation);
                if let Some(d) = dur.as_mut() {
                    d.maybe_checkpoint(&w, generation);
                }
            }
            Req::Expire(delta) => {
                // Merge consecutive expirations: deltas add. (Under a
                // per-record sync policy `merge` is off and the group is
                // this one op.)
                let mut delta = delta;
                let mut ops = 1u64;
                if merge {
                    loop {
                        match rx.try_recv() {
                            Ok(Req::Expire(more)) => {
                                processed += 1;
                                delta = delta.saturating_add(more);
                                ops += 1;
                            }
                            Ok(other) => {
                                processed += 1;
                                carry = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                        }
                    }
                }
                if let Some(d) = dur.as_mut() {
                    d.log_expire(delta, ops);
                }
                w.batch_expire(delta);
                generation += 1;
                obs.groups.inc();
                obs.ops_expire.add(ops);
                obs.merge_width.record(ops);
                obs.generation.set(generation);
                if let Some(d) = dur.as_mut() {
                    d.maybe_checkpoint(&w, generation);
                }
            }
            Req::Barrier(resp) => {
                let _ = resp.send(generation);
            }
            Req::Metrics(resp) => {
                // The snapshot folds the service's own registry with the
                // window structure's (tenant routing) and the process-wide
                // one (engine rounds, query plans). FIFO admission makes
                // it cover everything this service admitted — and hence
                // processed — before the request.
                let mut snap = obs.rec.snapshot();
                if let Some(r) = w.obs_recorder() {
                    snap.absorb(&r.snapshot());
                }
                snap.absorb(&bimst_obs::global().snapshot());
                let _ = resp.send(snap);
            }
            Req::Query { req, resp, at } => {
                // Coalesce the queued run of queries admitted at this
                // generation into shared-work plans. Barriers inside the
                // run are answered inline (queries do not advance the
                // generation, so their promise already holds).
                run.clear();
                run.push((req, resp, at));
                if cfg.coalesce {
                    loop {
                        match rx.try_recv() {
                            Ok(Req::Query { req, resp, at }) => {
                                processed += 1;
                                run.push((req, resp, at));
                            }
                            Ok(Req::Barrier(resp)) => {
                                processed += 1;
                                let _ = resp.send(generation);
                            }
                            Ok(other) => {
                                processed += 1;
                                carry = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                        }
                    }
                }
                serve(
                    &w,
                    generation,
                    &mut pool,
                    &done_tx,
                    &done_rx,
                    &mut run,
                    &mut scratch,
                    &obs,
                );
            }
        }
    }
    // Orderly shutdown: whatever the policy deferred is synced now, so a
    // clean drop of the service loses nothing — `SyncPolicy::None`'s loss
    // window is crashes only. Best-effort: the process is exiting the
    // writer either way, and the tail is still torn-safe on disk.
    if let Some(d) = dur.as_mut() {
        let _ = d.store.sync();
    }
    drop(done_tx);
    pool.shutdown();
}

/// Serves one coalesced run of query batches at one generation: merge
/// same-kind requests into one plan each (into the reused scratch),
/// publish the snapshot, fan the plans out across the reader pool, join,
/// split answers back per request, then reclaim the plan buffers for the
/// next generation. Steady-state dispatches allocate only the per-client
/// answer vectors (which the clients keep).
#[allow(clippy::too_many_arguments)]
pub(crate) fn serve<W: ServeWindow>(
    w: &W,
    generation: u64,
    pool: &mut ReaderPool<W>,
    done_tx: &Sender<Partial>,
    done_rx: &Receiver<Partial>,
    run: &mut Vec<RunEntry>,
    ws: &mut ServeScratch,
    obs: &SvcObs,
) {
    // One span covers the whole publish→serve→retire protocol.
    let _span = obs.serve_ns.time();
    // Merge per kind, in run order (so per-kind cursors can split answers
    // back without bookkeeping). The buffers arrive cleared from the
    // previous generation's reclaim.
    debug_assert!(ws.conn.is_empty() && ws.pm.is_empty() && ws.cs.is_empty());
    debug_assert!(ws.tconn.is_empty() && ws.tcut.is_empty());
    debug_assert!(ws.pf.is_empty() && ws.pfk.is_empty());
    let mut ded_plans: Vec<DedPlan> = Vec::new();
    let mut ded_total = 0usize;
    for (req, _, _) in run.iter() {
        match req {
            QueryReq::WindowConnected(qs) => {
                obs.q_conn.add(qs.len() as u64);
                ws.conn.extend_from_slice(qs);
            }
            QueryReq::PathMax(qs) => {
                obs.q_pm.add(qs.len() as u64);
                ws.pm.extend_from_slice(qs);
            }
            QueryReq::ComponentSize(vs) => {
                obs.q_cs.add(vs.len() as u64);
                ws.cs.extend_from_slice(vs);
            }
            // Folds of every kind merge into one plan: pairs concatenate
            // in run order, the request's kind repeats per query (same
            // trick as the tenant cutoffs). Readers re-split into maximal
            // same-kind spans, so batches of one kind still share the
            // monomorphized plan.
            QueryReq::PathFold { kind, pairs } => {
                obs.q_pf.add(pairs.len() as u64);
                ws.pf.extend_from_slice(pairs);
                ws.pfk.resize(ws.pf.len(), *kind);
            }
            QueryReq::TenantConnected { tenant, pairs } => match w.tenant_route(*tenant) {
                // Shared-routed tenants merge into one plan: pairs
                // concatenate, the tenant's cutoff repeats per query.
                Some(TenantRoute::Shared { cutoff }) => {
                    obs.q_tenant.add(pairs.len() as u64);
                    obs.tenant_shared.add(pairs.len() as u64);
                    ws.tconn.extend_from_slice(pairs);
                    ws.tcut.resize(ws.tconn.len(), cutoff);
                }
                Some(TenantRoute::Dedicated(_)) => {
                    obs.q_tenant.add(pairs.len() as u64);
                    obs.tenant_dedicated.add(pairs.len() as u64);
                    ded_plans.push((*tenant, Arc::new(pairs.clone()), ded_total));
                    ded_total += pairs.len();
                }
                // Fail stop: a tenant query against a window that serves
                // no tenants (or an unknown id) must not be silently
                // answered from the wrong window. Unwinding here (before
                // any fan-out) resolves every pending ticket as closed.
                None => panic!(
                    "bimst-service: no tenant route for id {tenant} \
                     (tenant query on a non-tenant service?)"
                ),
            },
        }
    }

    // Publish (protocol step 1): from here until the join completes, this
    // thread must not mutate `w` — rustc enforces it locally via the `&W`
    // borrow, the protocol extends it across the reader threads.
    let snap = Snapshot::publish(w);
    let conn = Arc::new(std::mem::take(&mut ws.conn));
    let pm = Arc::new(std::mem::take(&mut ws.pm));
    let cs = Arc::new(std::mem::take(&mut ws.cs));
    // A dead reader (its thread gone before dispatch) is recorded here and
    // folded into the poisoned-barrier fail-stop below — the same path a
    // reader that panicked *during* a serve takes. See `fan_out`.
    let mut dead_reader = false;
    let mut expected = 0usize;
    expected += fan_out(
        pool,
        snap,
        Work::WindowConnected(conn.clone()),
        conn.len(),
        done_tx,
        &mut dead_reader,
    );
    expected += fan_out(
        pool,
        snap,
        Work::PathMax(pm.clone()),
        pm.len(),
        done_tx,
        &mut dead_reader,
    );
    expected += fan_out(
        pool,
        snap,
        Work::ComponentSize(cs.clone()),
        cs.len(),
        done_tx,
        &mut dead_reader,
    );
    let tconn = Arc::new(std::mem::take(&mut ws.tconn));
    let tcut = Arc::new(std::mem::take(&mut ws.tcut));
    expected += fan_out(
        pool,
        snap,
        Work::TenantShared {
            pairs: tconn.clone(),
            cutoffs: tcut.clone(),
        },
        tconn.len(),
        done_tx,
        &mut dead_reader,
    );
    let pf = Arc::new(std::mem::take(&mut ws.pf));
    let pfk = Arc::new(std::mem::take(&mut ws.pfk));
    expected += fan_out(
        pool,
        snap,
        Work::PathFold {
            pairs: pf.clone(),
            kinds: pfk.clone(),
        },
        pf.len(),
        done_tx,
        &mut dead_reader,
    );
    for (tenant, pairs, base) in &ded_plans {
        expected += fan_out(
            pool,
            snap,
            Work::TenantDedicated {
                tenant: *tenant,
                pairs: pairs.clone(),
                base: *base,
            },
            pairs.len(),
            done_tx,
            &mut dead_reader,
        );
    }

    // Join barrier (protocol step 3): collect every partial before
    // touching the structure again. Plans of different kinds are in flight
    // simultaneously, so a run mixing kinds uses the whole pool.
    ws.conn_out.clear();
    ws.conn_out.resize(conn.len(), false);
    ws.pm_out.clear();
    ws.pm_out.resize(pm.len(), None);
    ws.cs_out.clear();
    ws.cs_out.resize(cs.len(), 0);
    ws.tconn_out.clear();
    ws.tconn_out.resize(tconn.len(), false);
    ws.tded_out.clear();
    ws.tded_out.resize(ded_total, false);
    ws.pf_out.clear();
    ws.pf_out.resize(pf.len(), None);
    let mut poisoned = false;
    for _ in 0..expected {
        let p = done_rx.recv().expect("bimst-service reader pool alive");
        match p.resp {
            PartialResp::Bools(b) => ws.conn_out[p.start..p.start + b.len()].copy_from_slice(&b),
            PartialResp::Keys(k) => ws.pm_out[p.start..p.start + k.len()].copy_from_slice(&k),
            PartialResp::Sizes(s) => ws.cs_out[p.start..p.start + s.len()].copy_from_slice(&s),
            PartialResp::TenantBools(b) => {
                ws.tconn_out[p.start..p.start + b.len()].copy_from_slice(&b)
            }
            PartialResp::DedBools(b) => ws.tded_out[p.start..p.start + b.len()].copy_from_slice(&b),
            PartialResp::Folds(f) => ws.pf_out[p.start..p.start + f.len()].copy_from_slice(&f),
            PartialResp::Panicked => poisoned = true,
        }
    }
    // Every partial is in, and readers drop their plan clones before
    // sending (reader_main), so the Arcs are singly held again: take the
    // buffers back for the next generation.
    ServeScratch::reclaim(&mut ws.conn, conn);
    ServeScratch::reclaim(&mut ws.pm, pm);
    ServeScratch::reclaim(&mut ws.cs, cs);
    ServeScratch::reclaim(&mut ws.tconn, tconn);
    ServeScratch::reclaim(&mut ws.tcut, tcut);
    ServeScratch::reclaim(&mut ws.pf, pf);
    ServeScratch::reclaim(&mut ws.pfk, pfk);
    // Fail stop, but only after the join barrier: every reader is parked
    // again, so unwinding the writer (dropping the structure) is safe, and
    // pending tickets resolve with `ServiceClosed` instead of hanging.
    // A worker that was already dead at dispatch time (`dead_reader`)
    // surfaces through this same path — previously it panicked the writer
    // mid-fan-out with a bare channel error, before the barrier drained.
    assert!(
        !(poisoned || dead_reader),
        "bimst-service: a reader worker {} serving a query batch \
         (malformed batch, e.g. an out-of-range vertex id?)",
        if poisoned { "panicked" } else { "died" }
    );

    // Split the merged answers back per request, in run order. A client
    // that dropped its ticket makes the send fail; that is its business.
    let (mut ci, mut pi, mut si) = (0usize, 0usize, 0usize);
    let (mut ti, mut di, mut fi) = (0usize, 0usize, 0usize);
    for (req, resp, at) in run.drain(..) {
        let answers = match &req {
            QueryReq::WindowConnected(qs) => {
                let out = ws.conn_out[ci..ci + qs.len()].to_vec();
                ci += qs.len();
                QueryResp::WindowConnected(out)
            }
            QueryReq::PathMax(qs) => {
                let out = ws.pm_out[pi..pi + qs.len()].to_vec();
                pi += qs.len();
                QueryResp::PathMax(out)
            }
            QueryReq::ComponentSize(vs) => {
                let out = ws.cs_out[si..si + vs.len()].to_vec();
                si += vs.len();
                QueryResp::ComponentSize(out)
            }
            QueryReq::PathFold { pairs, .. } => {
                let out = ws.pf_out[fi..fi + pairs.len()].to_vec();
                fi += pairs.len();
                QueryResp::PathFold(out)
            }
            QueryReq::TenantConnected { tenant, pairs } => {
                // Re-resolving the route is deterministic: `w` has not
                // changed since the merge pass (publish→retire), so each
                // request consumes the same cursor it fed.
                let out = match w.tenant_route(*tenant) {
                    Some(TenantRoute::Dedicated(_)) => {
                        let out = ws.tded_out[di..di + pairs.len()].to_vec();
                        di += pairs.len();
                        out
                    }
                    _ => {
                        let out = ws.tconn_out[ti..ti + pairs.len()].to_vec();
                        ti += pairs.len();
                        out
                    }
                };
                QueryResp::WindowConnected(out)
            }
        };
        // Admission-to-answer latency, per kind. `at` is stamped at
        // submission iff recording was on, so the off twin reads no clock.
        if let Some(at) = at {
            let ns = at.elapsed().as_nanos() as u64;
            match &req {
                QueryReq::WindowConnected(_) => obs.lat_conn.record(ns),
                QueryReq::PathMax(_) => obs.lat_pm.record(ns),
                QueryReq::ComponentSize(_) => obs.lat_cs.record(ns),
                QueryReq::TenantConnected { .. } => obs.lat_tenant.record(ns),
                QueryReq::PathFold { .. } => obs.lat_pf.record(ns),
            }
        }
        let _ = resp.send(Answered {
            generation,
            resp: answers,
        });
    }
}

/// Cuts one plan into contiguous ranges and hands them to the pool
/// round-robin. Returns the number of tasks *accepted* — a range refused
/// by a dead worker sets `dead` instead of counting, because no
/// [`Partial`] will ever arrive for it; the caller joins only on accepted
/// tasks and then fails stop. Dispatching must keep going past a dead
/// worker (rather than panicking on the spot) because the snapshot is
/// already published: unwinding before the join barrier would drop the
/// structure while live readers still borrow it.
fn fan_out<W: ServeWindow>(
    pool: &mut ReaderPool<W>,
    snap: Snapshot<W>,
    work: Work,
    len: usize,
    done: &Sender<Partial>,
    dead: &mut bool,
) -> usize {
    if len == 0 {
        return 0;
    }
    let chunk = len.div_ceil(pool.len()).max(MIN_SHARD);
    let mut parts = 0;
    let mut lo = 0;
    while lo < len {
        let hi = (lo + chunk).min(len);
        if pool.dispatch(ServeTask {
            snap,
            work: work.clone(),
            range: lo..hi,
            done: done.clone(),
        }) {
            parts += 1;
        } else {
            *dead = true;
        }
        lo = hi;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use bimst_sliding::SwConnEager;

    /// The coalesced serve path, driven directly with a deterministic
    /// multi-request run (the service-level tests cannot force coalescing,
    /// which depends on queue timing): merged plans must split back into
    /// per-request answers that match the sequential structure.
    #[test]
    fn serve_splits_coalesced_answers_per_request() {
        let mut w = SwConnEager::new(8, 3);
        w.batch_insert(&[(0, 1), (1, 2), (4, 5)]);
        w.batch_expire(1);

        let mut pool: ReaderPool<SwConnEager> = ReaderPool::spawn(2);
        let (done_tx, done_rx) = channel();
        let mut rxs = Vec::new();
        let mut run = Vec::new();
        let reqs = [
            QueryReq::WindowConnected(vec![(0, 1), (1, 2)]),
            QueryReq::ComponentSize(vec![0, 4]),
            QueryReq::WindowConnected(vec![(4, 5)]),
            QueryReq::PathMax(vec![(1, 2), (0, 2)]),
            QueryReq::ComponentSize(vec![2]),
            // Two fold kinds in one run: the merged plan carries a kind
            // per query and the reader re-splits it into same-kind spans.
            QueryReq::PathFold {
                kind: FoldKind::Hops,
                pairs: vec![(0, 2), (4, 5)],
            },
            QueryReq::PathFold {
                kind: FoldKind::Min,
                pairs: vec![(1, 2)],
            },
        ];
        for req in &reqs {
            let (tx, rx) = channel();
            run.push((req.clone(), tx, None));
            rxs.push(rx);
        }
        let mut ws = ServeScratch::default();
        let obs = SvcObs::new(bimst_obs::Recorder::new());
        serve(
            &w, 7, &mut pool, &done_tx, &done_rx, &mut run, &mut ws, &obs,
        );
        assert!(run.is_empty(), "serve consumes the run");

        let answers: Vec<Answered> = rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
        assert!(answers.iter().all(|a| a.generation == 7));
        assert_eq!(
            answers[0].resp,
            QueryResp::WindowConnected(vec![w.is_connected(0, 1), w.is_connected(1, 2)])
        );
        assert_eq!(
            answers[1].resp,
            QueryResp::ComponentSize(vec![w.msf().component_size(0), w.msf().component_size(4)])
        );
        assert_eq!(
            answers[2].resp,
            QueryResp::WindowConnected(vec![w.is_connected(4, 5)])
        );
        assert_eq!(
            answers[3].resp,
            QueryResp::PathMax(vec![w.msf().path_max(1, 2), w.msf().path_max(0, 2)])
        );
        assert_eq!(
            answers[4].resp,
            QueryResp::ComponentSize(vec![w.msf().component_size(2)])
        );
        assert_eq!(
            answers[5].resp,
            QueryResp::PathFold(vec![
                w.msf()
                    .path_fold::<bimst_primitives::Hops>(0, 2)
                    .map(FoldValue::Hops),
                w.msf()
                    .path_fold::<bimst_primitives::Hops>(4, 5)
                    .map(FoldValue::Hops),
            ])
        );
        assert_eq!(
            answers[6].resp,
            QueryResp::PathFold(vec![w
                .msf()
                .path_fold::<bimst_primitives::MinW>(1, 2)
                .map(FoldValue::Key)])
        );
        pool.shutdown();
    }

    /// Large merged plans are range-partitioned across readers; splicing
    /// the partials back must reconstruct the full per-query loop answers.
    #[test]
    fn fan_out_partitions_reassemble_exactly() {
        let mut w = SwConnEager::new(200, 5);
        let ring: Vec<(u32, u32)> = (0..199).map(|v| (v, v + 1)).collect();
        w.batch_insert(&ring);
        w.batch_expire(40);

        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 200, (i * 7 + 3) % 200)).collect();
        let mut pool: ReaderPool<SwConnEager> = ReaderPool::spawn(3);
        let (done_tx, done_rx) = channel();
        let (tx, rx) = channel();
        let mut run = vec![(QueryReq::WindowConnected(pairs.clone()), tx, None)];
        let mut ws = ServeScratch::default();
        let obs = SvcObs::new(bimst_obs::Recorder::new());
        serve(
            &w, 1, &mut pool, &done_tx, &done_rx, &mut run, &mut ws, &obs,
        );
        let got = rx.recv().unwrap().resp.into_window_connected().unwrap();
        let want: Vec<bool> = pairs.iter().map(|&(u, v)| w.is_connected(u, v)).collect();
        assert_eq!(got, want);
        pool.shutdown();
    }

    /// A reader thread that died *outside* a serve (so its channel is
    /// already disconnected at dispatch time) must surface through the
    /// poisoned-barrier fail-stop — the same error a reader that panicked
    /// mid-serve produces — not the old bare
    /// `expect("bimst-service reader worker alive")` panic, which fired
    /// mid-fan-out while the surviving readers still held the published
    /// snapshot. The surviving workers' partials are drained first (the
    /// join barrier counts only accepted tasks), then the writer fails
    /// stop.
    #[test]
    fn dead_reader_routes_through_the_poisoned_barrier() {
        let mut w = SwConnEager::new(200, 5);
        let ring: Vec<(u32, u32)> = (0..199).map(|v| (v, v + 1)).collect();
        w.batch_insert(&ring);

        let mut pool: ReaderPool<SwConnEager> = ReaderPool::spawn(2);
        pool.kill_worker(1);
        // 200 pairs with 2 workers → chunk 100 ≥ MIN_SHARD → two tasks:
        // one lands on the live worker, one on the dead slot.
        let pairs: Vec<(u32, u32)> = (0..200u32).map(|i| (i, (i * 3 + 1) % 200)).collect();
        let (done_tx, done_rx) = channel();
        let (tx, answer_rx) = channel();
        let mut run = vec![(QueryReq::WindowConnected(pairs), tx, None)];
        let mut ws = ServeScratch::default();
        let obs = SvcObs::new(bimst_obs::Recorder::new());
        let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(
                &w, 1, &mut pool, &done_tx, &done_rx, &mut run, &mut ws, &obs,
            );
        }))
        .expect_err("a dead reader must fail stop the serve");
        let msg = unwind.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("a reader worker died serving a query batch"),
            "fail-stop message names the dead-reader cause: {msg}"
        );
        // The ticket was never answered: the writer unwound before the
        // split, so the run (and with it the answer sender) is what a
        // real writer thread would drop on unwind — exactly like a
        // poisoned serve, the client sees a closed channel, not a hang.
        drop(run);
        assert!(answer_rx.recv().is_err());
        pool.shutdown();
    }

    /// The serve path over a `TenantSet`, driven directly with a run that
    /// mixes shared-routed and dedicated-routed tenant batches with plain
    /// window queries: every split answer must match the sequentially
    /// queried structure.
    #[test]
    fn serve_splits_mixed_tenant_runs() {
        use bimst_sliding::{TenantConfig, TenantSet, TenantSpec};
        let specs = [
            TenantSpec { id: 3, window: 32 },
            TenantSpec { id: 7, window: 6 },
            TenantSpec { id: 9, window: 2 }, // dedicated under fraction 1/4
        ];
        let mut w = TenantSet::new(
            12,
            5,
            &specs,
            TenantConfig {
                dedicated_fraction: 1.0 / 4.0,
            },
        );
        w.batch_insert(&[(0, 1), (1, 2), (4, 5), (5, 6), (2, 3)]);
        w.batch_expire(2);

        let pairs: Vec<(u32, u32)> = vec![(0, 2), (0, 3), (4, 6), (1, 3), (5, 5)];
        let mut pool: ReaderPool<TenantSet> = ReaderPool::spawn(2);
        let (done_tx, done_rx) = channel();
        let mut rxs = Vec::new();
        let mut run = Vec::new();
        let mut reqs: Vec<QueryReq> = specs
            .iter()
            .map(|s| QueryReq::TenantConnected {
                tenant: s.id,
                pairs: pairs.clone(),
            })
            .collect();
        reqs.push(QueryReq::WindowConnected(pairs.clone()));
        for req in &reqs {
            let (tx, rx) = channel();
            run.push((req.clone(), tx, None));
            rxs.push(rx);
        }
        let mut ws = ServeScratch::default();
        let obs = SvcObs::new(bimst_obs::Recorder::new());
        serve(
            &w, 4, &mut pool, &done_tx, &done_rx, &mut run, &mut ws, &obs,
        );

        let answers: Vec<Answered> = rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
        for (i, s) in specs.iter().enumerate() {
            let want: Vec<bool> = pairs
                .iter()
                .map(|&(u, v)| w.is_connected(s.id, u, v))
                .collect();
            assert_eq!(
                answers[i].resp,
                QueryResp::WindowConnected(want),
                "tenant {}",
                s.id
            );
        }
        let want: Vec<bool> = pairs
            .iter()
            .map(|&(u, v)| w.shared().is_connected(u, v))
            .collect();
        assert_eq!(answers[3].resp, QueryResp::WindowConnected(want));
        pool.shutdown();
    }

    /// The serve path's merged-plan/answer buffers must reach a capacity
    /// plateau and stay there: after a warmup dispatch at each run shape,
    /// repeated same-shape generations reclaim every buffer through the
    /// post-join `Arc` round-trip instead of reallocating (the ROADMAP's
    /// "serve path still allocates per dispatch" lever, closed). Styled
    /// after `scratch_steady_state.rs` on the write path.
    #[test]
    fn serve_scratch_steady_state() {
        let mut w = SwConnEager::new(300, 9);
        let ring: Vec<(u32, u32)> = (0..299).map(|v| (v, v + 1)).collect();
        w.batch_insert(&ring);
        w.batch_expire(20);

        let mut pool: ReaderPool<SwConnEager> = ReaderPool::spawn(3);
        let (done_tx, done_rx) = channel();
        let mut ws = ServeScratch::default();
        let obs = SvcObs::new(bimst_obs::Recorder::new());
        let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i % 300, (i * 11 + 5) % 300)).collect();
        let verts: Vec<u32> = (0..250u32).map(|i| (i * 7) % 300).collect();

        let mut dispatch = |ws: &mut ServeScratch, gen: u64| {
            let mut rxs = Vec::new();
            let mut run = Vec::new();
            for req in [
                QueryReq::WindowConnected(pairs.clone()),
                QueryReq::PathMax(pairs[..128].to_vec()),
                QueryReq::ComponentSize(verts.clone()),
                QueryReq::WindowConnected(pairs[..64].to_vec()),
            ] {
                let (tx, rx) = channel();
                run.push((req, tx, None));
                rxs.push(rx);
            }
            serve(&w, gen, &mut pool, &done_tx, &done_rx, &mut run, ws, &obs);
            for rx in rxs {
                rx.recv().expect("answer delivered");
            }
        };

        dispatch(&mut ws, 0); // warmup: buffers ratchet to this run shape
        let high_water = ws.high_water();
        assert!(high_water > 0, "scratch should be warm after a dispatch");
        for gen in 1..60u64 {
            dispatch(&mut ws, gen);
            assert_eq!(
                ws.high_water(),
                high_water,
                "serve scratch grew on steady-state generation {gen}"
            );
        }
        pool.shutdown();
    }
}
