//! The writer side of the runtime: one thread owning the window structure,
//! draining the admission queue in FIFO order with group commit for writes
//! and coalescing + fan-out for reads.
//!
//! Sequential semantics: the state after processing the queue is identical
//! to applying every admitted op one at a time in admission order, and
//! every query is answered from exactly the state at its admission point.
//! Group commit preserves this because consecutive inserts concatenate
//! stream positions and consecutive expirations add deltas
//! (`bimst_sliding::SlidingWrite`'s contract), and coalescing preserves it
//! because batch-query answers are bit-identical to the per-query loop
//! regardless of how batches are merged or range-partitioned (the
//! `bimst-query` determinism contract, pinned by `tests/prop_query.rs`).

use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;

use bimst_primitives::VertexId;

use crate::reader::{Partial, PartialResp, ReaderPool, ServeTask, Snapshot, Work};
use crate::{Answered, QueryReq, QueryResp, ServeWindow, ServiceConfig};

/// An admitted operation (see `ServiceHandle` for the client-side view).
pub(crate) enum Req {
    /// Append edges on the new side of the window.
    Insert(Vec<(VertexId, VertexId)>),
    /// Expire the Δ oldest stream positions.
    Expire(u64),
    /// Answer a query batch at the admission generation.
    Query {
        /// The batch.
        req: QueryReq,
        /// Where the [`Answered`] goes.
        resp: Sender<Answered>,
    },
    /// Resolve with the generation once prior writes are applied.
    Barrier(Sender<u64>),
}

/// Smallest per-reader slice of a merged plan: below this, splitting costs
/// more (task envelope, channel hop) than a reader saves. The partition is
/// a fixed function of `(plan len, reader count)` — never of timing — and
/// answers are partition-independent anyway.
const MIN_SHARD: usize = 64;

/// The writer loop. Runs until the admission queue disconnects (every
/// `ServiceHandle` dropped), which is what makes "admitted ⇒ processed"
/// exact: a submission that was acked is in the queue, and the queue is
/// drained to the end before the readers retire and the structure drops.
pub(crate) fn writer_main<W: ServeWindow>(mut w: W, cfg: ServiceConfig, rx: Receiver<Req>) {
    let mut pool: ReaderPool<W> = ReaderPool::spawn(cfg.readers);
    let (done_tx, done_rx) = channel::<Partial>();
    let mut generation: u64 = 0;
    // An op pulled while merging that belongs to the *next* step.
    let mut carry: Option<Req> = None;
    // Group-commit buffer, reused across groups.
    let mut wbuf: Vec<(VertexId, VertexId)> = Vec::new();
    // The current coalescing run of query requests, reused across runs.
    let mut run: Vec<(QueryReq, Sender<Answered>)> = Vec::new();

    loop {
        let first = match carry.take() {
            Some(r) => r,
            None => match rx.recv() {
                Ok(r) => r,
                Err(_) => break, // all handles dropped and queue drained
            },
        };
        match first {
            Req::Insert(edges) => {
                // Group commit: merge consecutive queued inserts up to the
                // budget. Positions concatenate, so one batch_insert of the
                // merged run equals the per-op inserts — but pays the
                // O(ℓ lg(1 + n/ℓ)) batch bound once.
                wbuf.clear();
                wbuf.extend_from_slice(&edges);
                while wbuf.len() < cfg.write_budget.max(1) {
                    match rx.try_recv() {
                        Ok(Req::Insert(more)) => wbuf.extend_from_slice(&more),
                        Ok(other) => {
                            carry = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                w.batch_insert(&wbuf);
                generation += 1;
            }
            Req::Expire(delta) => {
                // Merge consecutive expirations: deltas add.
                let mut delta = delta;
                loop {
                    match rx.try_recv() {
                        Ok(Req::Expire(more)) => delta = delta.saturating_add(more),
                        Ok(other) => {
                            carry = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                w.batch_expire(delta);
                generation += 1;
            }
            Req::Barrier(resp) => {
                let _ = resp.send(generation);
            }
            Req::Query { req, resp } => {
                // Coalesce the queued run of queries admitted at this
                // generation into shared-work plans. Barriers inside the
                // run are answered inline (queries do not advance the
                // generation, so their promise already holds).
                run.clear();
                run.push((req, resp));
                if cfg.coalesce {
                    loop {
                        match rx.try_recv() {
                            Ok(Req::Query { req, resp }) => run.push((req, resp)),
                            Ok(Req::Barrier(resp)) => {
                                let _ = resp.send(generation);
                            }
                            Ok(other) => {
                                carry = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                        }
                    }
                }
                serve(&w, generation, &mut pool, &done_tx, &done_rx, &mut run);
            }
        }
    }
    drop(done_tx);
    pool.shutdown();
}

/// Serves one coalesced run of query batches at one generation: merge
/// same-kind requests into one plan each, publish the snapshot, fan the
/// plans out across the reader pool, join, split answers back per request.
fn serve<W: ServeWindow>(
    w: &W,
    generation: u64,
    pool: &mut ReaderPool<W>,
    done_tx: &Sender<Partial>,
    done_rx: &Receiver<Partial>,
    run: &mut Vec<(QueryReq, Sender<Answered>)>,
) {
    // Merge per kind, in run order (so per-kind cursors can split answers
    // back without bookkeeping).
    let mut conn: Vec<(VertexId, VertexId)> = Vec::new();
    let mut pm: Vec<(VertexId, VertexId)> = Vec::new();
    let mut cs: Vec<VertexId> = Vec::new();
    for (req, _) in run.iter() {
        match req {
            QueryReq::WindowConnected(qs) => conn.extend_from_slice(qs),
            QueryReq::PathMax(qs) => pm.extend_from_slice(qs),
            QueryReq::ComponentSize(vs) => cs.extend_from_slice(vs),
        }
    }

    // Publish (protocol step 1): from here until the join completes, this
    // thread must not mutate `w` — rustc enforces it locally via the `&W`
    // borrow, the protocol extends it across the reader threads.
    let snap = Snapshot::publish(w);
    let (conn, pm, cs) = (Arc::new(conn), Arc::new(pm), Arc::new(cs));
    let mut expected = 0usize;
    expected += fan_out(
        pool,
        snap,
        Work::WindowConnected(conn.clone()),
        conn.len(),
        done_tx,
    );
    expected += fan_out(pool, snap, Work::PathMax(pm.clone()), pm.len(), done_tx);
    expected += fan_out(
        pool,
        snap,
        Work::ComponentSize(cs.clone()),
        cs.len(),
        done_tx,
    );

    // Join barrier (protocol step 3): collect every partial before
    // touching the structure again. Plans of different kinds are in flight
    // simultaneously, so a run mixing kinds uses the whole pool.
    let mut conn_out: Vec<bool> = vec![false; conn.len()];
    let mut pm_out = vec![None; pm.len()];
    let mut cs_out: Vec<usize> = vec![0; cs.len()];
    let mut poisoned = false;
    for _ in 0..expected {
        let p = done_rx.recv().expect("bimst-service reader pool alive");
        match p.resp {
            PartialResp::Bools(b) => conn_out[p.start..p.start + b.len()].copy_from_slice(&b),
            PartialResp::Keys(k) => pm_out[p.start..p.start + k.len()].copy_from_slice(&k),
            PartialResp::Sizes(s) => cs_out[p.start..p.start + s.len()].copy_from_slice(&s),
            PartialResp::Panicked => poisoned = true,
        }
    }
    // Fail stop, but only after the join barrier: every reader is parked
    // again, so unwinding the writer (dropping the structure) is safe, and
    // pending tickets resolve with `ServiceClosed` instead of hanging.
    assert!(
        !poisoned,
        "bimst-service: a reader worker panicked serving a query batch \
         (malformed batch, e.g. an out-of-range vertex id?)"
    );

    // Split the merged answers back per request, in run order. A client
    // that dropped its ticket makes the send fail; that is its business.
    let (mut ci, mut pi, mut si) = (0usize, 0usize, 0usize);
    for (req, resp) in run.drain(..) {
        let answers = match &req {
            QueryReq::WindowConnected(qs) => {
                let out = conn_out[ci..ci + qs.len()].to_vec();
                ci += qs.len();
                QueryResp::WindowConnected(out)
            }
            QueryReq::PathMax(qs) => {
                let out = pm_out[pi..pi + qs.len()].to_vec();
                pi += qs.len();
                QueryResp::PathMax(out)
            }
            QueryReq::ComponentSize(vs) => {
                let out = cs_out[si..si + vs.len()].to_vec();
                si += vs.len();
                QueryResp::ComponentSize(out)
            }
        };
        let _ = resp.send(Answered {
            generation,
            resp: answers,
        });
    }
}

/// Cuts one plan into contiguous ranges and hands them to the pool
/// round-robin. Returns the number of tasks dispatched.
fn fan_out<W: ServeWindow>(
    pool: &mut ReaderPool<W>,
    snap: Snapshot<W>,
    work: Work,
    len: usize,
    done: &Sender<Partial>,
) -> usize {
    if len == 0 {
        return 0;
    }
    let chunk = len.div_ceil(pool.len()).max(MIN_SHARD);
    let mut parts = 0;
    let mut lo = 0;
    while lo < len {
        let hi = (lo + chunk).min(len);
        pool.dispatch(ServeTask {
            snap,
            work: work.clone(),
            range: lo..hi,
            done: done.clone(),
        });
        lo = hi;
        parts += 1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use bimst_sliding::SwConnEager;

    /// The coalesced serve path, driven directly with a deterministic
    /// multi-request run (the service-level tests cannot force coalescing,
    /// which depends on queue timing): merged plans must split back into
    /// per-request answers that match the sequential structure.
    #[test]
    fn serve_splits_coalesced_answers_per_request() {
        let mut w = SwConnEager::new(8, 3);
        w.batch_insert(&[(0, 1), (1, 2), (4, 5)]);
        w.batch_expire(1);

        let mut pool: ReaderPool<SwConnEager> = ReaderPool::spawn(2);
        let (done_tx, done_rx) = channel();
        let mut rxs = Vec::new();
        let mut run = Vec::new();
        let reqs = [
            QueryReq::WindowConnected(vec![(0, 1), (1, 2)]),
            QueryReq::ComponentSize(vec![0, 4]),
            QueryReq::WindowConnected(vec![(4, 5)]),
            QueryReq::PathMax(vec![(1, 2), (0, 2)]),
            QueryReq::ComponentSize(vec![2]),
        ];
        for req in &reqs {
            let (tx, rx) = channel();
            run.push((req.clone(), tx));
            rxs.push(rx);
        }
        serve(&w, 7, &mut pool, &done_tx, &done_rx, &mut run);
        assert!(run.is_empty(), "serve consumes the run");

        let answers: Vec<Answered> = rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
        assert!(answers.iter().all(|a| a.generation == 7));
        assert_eq!(
            answers[0].resp,
            QueryResp::WindowConnected(vec![w.is_connected(0, 1), w.is_connected(1, 2)])
        );
        assert_eq!(
            answers[1].resp,
            QueryResp::ComponentSize(vec![w.msf().component_size(0), w.msf().component_size(4)])
        );
        assert_eq!(
            answers[2].resp,
            QueryResp::WindowConnected(vec![w.is_connected(4, 5)])
        );
        assert_eq!(
            answers[3].resp,
            QueryResp::PathMax(vec![w.msf().path_max(1, 2), w.msf().path_max(0, 2)])
        );
        assert_eq!(
            answers[4].resp,
            QueryResp::ComponentSize(vec![w.msf().component_size(2)])
        );
        pool.shutdown();
    }

    /// Large merged plans are range-partitioned across readers; splicing
    /// the partials back must reconstruct the full per-query loop answers.
    #[test]
    fn fan_out_partitions_reassemble_exactly() {
        let mut w = SwConnEager::new(200, 5);
        let ring: Vec<(u32, u32)> = (0..199).map(|v| (v, v + 1)).collect();
        w.batch_insert(&ring);
        w.batch_expire(40);

        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 200, (i * 7 + 3) % 200)).collect();
        let mut pool: ReaderPool<SwConnEager> = ReaderPool::spawn(3);
        let (done_tx, done_rx) = channel();
        let (tx, rx) = channel();
        let mut run = vec![(QueryReq::WindowConnected(pairs.clone()), tx)];
        serve(&w, 1, &mut pool, &done_tx, &done_rx, &mut run);
        let got = rx.recv().unwrap().resp.into_window_connected().unwrap();
        let want: Vec<bool> = pairs.iter().map(|&(u, v)| w.is_connected(u, v)).collect();
        assert_eq!(got, want);
        pool.shutdown();
    }
}
