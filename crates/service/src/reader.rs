//! The reader side of the runtime: persistent worker threads, each owning
//! one [`QueryBatch`] shard, answering range-partitioned slices of the
//! writer's coalesced query plans against an epoch-pinned snapshot.
//!
//! # The epoch-handoff protocol
//!
//! The structure lives on the writer thread; readers see it only through
//! [`Snapshot`], a type-erased shared borrow that crosses the task channel.
//! Rust cannot express "this borrow is valid until the writer collects the
//! matching [`Partial`]" in lifetimes, so the invariant is a protocol,
//! enforced by the writer's control flow and documented here as the
//! contract every `unsafe` block below relies on:
//!
//! 1. **Publish.** The writer creates a `Snapshot` of `&W` and sends tasks
//!    referencing it. From this point the writer does not mutate (or move)
//!    the structure.
//! 2. **Serve.** A reader dereferences the snapshot only between receiving
//!    a task and sending that task's `Partial` — never holding the
//!    reference across loop iterations.
//! 3. **Retire.** The writer blocks until it has received one `Partial`
//!    per dispatched task, and only then resumes mutation. The channel's
//!    happens-before edge on each `Partial` makes the readers' last loads
//!    visible before the writer's next store.
//!
//! Together 1–3 re-create the borrow checker's many-readers-XOR-one-writer
//! rule at runtime, which is why every answer is computed against one
//! consistent generation.

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use bimst_primitives::{FoldKind, FoldValue, Hops, MaxW, MinW, SumW, VertexId, WKey};
use bimst_query::{QueryBatch, ReadHandle, TenantRoute, WindowConnectivity};

use crate::ServeWindow;

/// A shared borrow of the shard structure, valid for exactly one serve
/// generation (see the module docs for the protocol that makes this
/// sound). `Copy` so one publication fans out to many tasks.
pub(crate) struct Snapshot<W>(*const W);

impl<W> Snapshot<W> {
    /// Publishes the structure for the current generation.
    pub(crate) fn publish(w: &W) -> Self {
        Snapshot(w as *const W)
    }

    /// Dereferences the snapshot.
    ///
    /// # Safety
    ///
    /// Callers must be inside the publish→retire window of the protocol in
    /// the module docs: the writer is parked at the join barrier and will
    /// not mutate until this task's [`Partial`] is sent.
    pub(crate) unsafe fn get<'a>(&self) -> &'a W {
        unsafe { &*self.0 }
    }
}

impl<W> Clone for Snapshot<W> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<W> Copy for Snapshot<W> {}

// SAFETY: the raw pointer is only dereferenced under the publish→retire
// protocol (no `&mut` alias exists while any reader holds the borrow), and
// `W: Sync` makes `&W` itself shareable across threads.
unsafe impl<W: Sync> Send for Snapshot<W> {}

/// One coalesced query plan's merged input, shared by every range task cut
/// from it.
#[derive(Clone)]
pub(crate) enum Work {
    /// Window connectivity over endpoint pairs.
    WindowConnected(Arc<Vec<(VertexId, VertexId)>>),
    /// MSF path-max over endpoint pairs.
    PathMax(Arc<Vec<(VertexId, VertexId)>>),
    /// MSF component sizes over vertices.
    ComponentSize(Arc<Vec<VertexId>>),
    /// Monoid path folds over endpoint pairs, all kinds merged into one
    /// plan in run order. The reader cuts its range into maximal
    /// same-kind spans and serves each through the monomorphized
    /// `batch_window_path_fold` — so a run of one kind (the common case)
    /// is one generic plan, never a per-query dispatch.
    PathFold {
        /// Merged endpoint pairs, every fold request concatenated.
        pairs: Arc<Vec<(VertexId, VertexId)>>,
        /// Per-query fold kinds, parallel to `pairs`.
        kinds: Arc<Vec<FoldKind>>,
    },
    /// Tenant connectivity routed to the *shared* structure: the merged
    /// mixed-tenant pairs with one cutoff per query — one shared path-max
    /// plan across every shared-routed tenant in the run.
    TenantShared {
        /// Merged endpoint pairs, all shared-routed tenants concatenated.
        pairs: Arc<Vec<(VertexId, VertexId)>>,
        /// Per-query tenant cutoffs, parallel to `pairs`.
        cutoffs: Arc<Vec<u64>>,
    },
    /// Tenant connectivity routed to one tenant's dedicated
    /// divergence-fallback structure.
    TenantDedicated {
        /// The tenant whose dedicated structure answers this plan.
        tenant: u32,
        /// The request's endpoint pairs.
        pairs: Arc<Vec<(VertexId, VertexId)>>,
        /// Offset of this plan's answers within the writer's concatenated
        /// dedicated-answer buffer (several dedicated plans can be in
        /// flight in one generation; `base` keeps their splices disjoint).
        base: usize,
    },
}

/// A range of one plan, assigned to one reader.
pub(crate) struct ServeTask<W> {
    /// The generation's published structure.
    pub snap: Snapshot<W>,
    /// The plan's merged input.
    pub work: Work,
    /// The slice of the merged input this task answers.
    pub range: Range<usize>,
    /// Where the partial answers go (the writer's join barrier counts
    /// these).
    pub done: Sender<Partial>,
}

/// Partial answers for one [`ServeTask`]'s range.
pub(crate) struct Partial {
    /// Splice offset within the plan's answer buffer (the task range's
    /// start; dedicated-tenant plans add their plan `base`).
    pub start: usize,
    /// The answers, kind-tagged like [`Work`].
    pub resp: PartialResp,
}

/// See [`Partial`].
pub(crate) enum PartialResp {
    /// Window-connectivity answers.
    Bools(Vec<bool>),
    /// Path-max answers.
    Keys(Vec<Option<WKey>>),
    /// Component sizes.
    Sizes(Vec<usize>),
    /// Shared-routed tenant connectivity answers.
    TenantBools(Vec<bool>),
    /// Dedicated-routed tenant connectivity answers.
    DedBools(Vec<bool>),
    /// Path-fold answers, value arm per the query's [`FoldKind`].
    Folds(Vec<Option<FoldValue>>),
    /// The reader panicked executing this range (e.g. an out-of-range
    /// vertex id). Sent so the writer fails stop instead of waiting
    /// forever at the join barrier for an answer that cannot come.
    Panicked,
}

enum Task<W> {
    Serve(ServeTask<W>),
    Stop,
}

/// The persistent reader workers. Tasks are assigned round-robin; each
/// reader's `QueryBatch` scratch (sorted-endpoint buffers, CPT chunk
/// workspaces) survives across generations, so steady-state serving reuses
/// capacity exactly like the write path's scratch discipline.
pub(crate) struct ReaderPool<W> {
    txs: Vec<Sender<Task<W>>>,
    threads: Vec<JoinHandle<()>>,
    next: usize,
}

impl<W: ServeWindow> ReaderPool<W> {
    /// Spawns `readers` workers (clamped to ≥ 1).
    pub(crate) fn spawn(readers: usize) -> Self {
        let readers = readers.max(1);
        let mut txs = Vec::with_capacity(readers);
        let mut threads = Vec::with_capacity(readers);
        for i in 0..readers {
            let (tx, rx) = channel::<Task<W>>();
            let handle = std::thread::Builder::new()
                .name(format!("bimst-serve-reader-{i}"))
                .spawn(move || reader_main(rx))
                .expect("spawn bimst-service reader thread");
            txs.push(tx);
            threads.push(handle);
        }
        ReaderPool {
            txs,
            threads,
            next: 0,
        }
    }

    /// Number of workers.
    pub(crate) fn len(&self) -> usize {
        self.txs.len()
    }

    /// Hands a task to the next worker (round-robin). Returns whether the
    /// worker accepted it: `false` means that reader thread is gone (its
    /// channel disconnected), so no [`Partial`] will ever arrive for the
    /// task. The caller must fold that into the poisoned-barrier
    /// fail-stop path — count only accepted tasks toward the join
    /// barrier, drain them, and *then* fail stop — never panic mid-fan-out
    /// while other readers may still hold the published snapshot.
    #[must_use]
    pub(crate) fn dispatch(&mut self, task: ServeTask<W>) -> bool {
        let i = self.next;
        self.next = (self.next + 1) % self.txs.len();
        self.txs[i].send(Task::Serve(task)).is_ok()
    }

    /// Test-only: stops worker `i` and joins it, simulating a reader
    /// thread that died outside the serve path. Joining (not just
    /// signalling) guarantees the receiver is dropped, so the next
    /// [`ReaderPool::dispatch`] aimed at the slot reports `false` rather
    /// than queueing a task no one will serve.
    #[cfg(test)]
    pub(crate) fn kill_worker(&mut self, i: usize) {
        let _ = self.txs[i].send(Task::Stop);
        let _ = self.threads.remove(i).join();
    }

    /// Retires the pool: readers finish queued tasks, then exit and join.
    pub(crate) fn shutdown(self) {
        for tx in &self.txs {
            let _ = tx.send(Task::Stop);
        }
        drop(self.txs);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn reader_main<W: ServeWindow>(rx: Receiver<Task<W>>) {
    let mut q = QueryBatch::new();
    while let Ok(task) = rx.recv() {
        let ServeTask {
            snap,
            work,
            range,
            done,
        } = match task {
            Task::Serve(t) => t,
            Task::Stop => break,
        };
        // SAFETY: protocol steps 1–3 (module docs) — the writer published
        // this snapshot for the current generation and is parked at the
        // join barrier until the `send` below is received.
        let w: &W = unsafe { snap.get() };
        // A panic (e.g. an out-of-range vertex id in a client's batch)
        // must not strand the writer at its join barrier: catch it, report
        // a poison partial, and let the writer fail stop. The panic cannot
        // leave the snapshot borrowed — the catch boundary is inside the
        // publish→retire window — but the executor's scratch may be
        // mid-update, so it is discarded below.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &work {
            Work::WindowConnected(pairs) => {
                let mut out = Vec::new();
                q.batch_window_connected_into(w, &pairs[range.clone()], &mut out);
                PartialResp::Bools(out)
            }
            Work::PathMax(pairs) => {
                let mut out = Vec::new();
                q.batch_path_max_into(
                    ReadHandle::new(WindowConnectivity::msf(w)),
                    &pairs[range.clone()],
                    &mut out,
                );
                PartialResp::Keys(out)
            }
            Work::ComponentSize(vs) => {
                let mut out = Vec::new();
                q.batch_component_size_into(
                    ReadHandle::new(WindowConnectivity::msf(w)),
                    &vs[range.clone()],
                    &mut out,
                );
                PartialResp::Sizes(out)
            }
            Work::PathFold { pairs, kinds } => {
                let mut out = Vec::with_capacity(range.len());
                let mut lo = range.start;
                while lo < range.end {
                    let kind = kinds[lo];
                    let mut hi = lo + 1;
                    while hi < range.end && kinds[hi] == kind {
                        hi += 1;
                    }
                    fold_span(&mut q, w, kind, &pairs[lo..hi], &mut out);
                    lo = hi;
                }
                PartialResp::Folds(out)
            }
            Work::TenantShared { pairs, cutoffs } => {
                let mut out = Vec::new();
                q.batch_connected_at_into(
                    w,
                    &pairs[range.clone()],
                    &cutoffs[range.clone()],
                    &mut out,
                );
                PartialResp::TenantBools(out)
            }
            Work::TenantDedicated { tenant, pairs, .. } => {
                // The writer resolved the route at merge time and has not
                // touched the structure since (publish→retire), so the
                // dedicated structure must still be there.
                let Some(TenantRoute::Dedicated(d)) = w.tenant_route(*tenant) else {
                    panic!("bimst-service: tenant {tenant} route changed mid-generation");
                };
                let mut out = Vec::new();
                q.batch_window_connected_into(d, &pairs[range.clone()], &mut out);
                PartialResp::DedBools(out)
            }
        }));
        let resp = result.unwrap_or_else(|_| {
            q = QueryBatch::new(); // scratch may be torn mid-update
            PartialResp::Panicked
        });
        let start = match &work {
            Work::TenantDedicated { base, .. } => base + range.start,
            _ => range.start,
        };
        // Release the plan's `Arc` *before* signalling completion: once
        // the writer has collected every `Partial`, no reader holds a
        // reference, so the writer can deterministically reclaim the
        // merged-plan buffer (`Arc::try_unwrap`) for the next generation
        // instead of reallocating per dispatch.
        drop(work);
        let _ = done.send(Partial { start, resp });
    }
}

/// Serves one same-kind span of a merged path-fold plan: dispatches the
/// wire-level [`FoldKind`] to the monomorphized monoid fold (answered at
/// the structure's current window, like every other served query) and
/// tags the answers with the matching [`FoldValue`] arm.
fn fold_span<W: ServeWindow>(
    q: &mut QueryBatch,
    w: &W,
    kind: FoldKind,
    pairs: &[(VertexId, VertexId)],
    out: &mut Vec<Option<FoldValue>>,
) {
    match kind {
        FoldKind::Max => out.extend(
            q.batch_window_path_fold::<MaxW, W>(w, pairs)
                .into_iter()
                .map(|k| k.map(FoldValue::Key)),
        ),
        FoldKind::Min => out.extend(
            q.batch_window_path_fold::<MinW, W>(w, pairs)
                .into_iter()
                .map(|k| k.map(FoldValue::Key)),
        ),
        FoldKind::Sum => out.extend(
            q.batch_window_path_fold::<SumW, W>(w, pairs)
                .into_iter()
                .map(|s| s.map(FoldValue::Sum)),
        ),
        FoldKind::Hops => out.extend(
            q.batch_window_path_fold::<Hops, W>(w, pairs)
                .into_iter()
                .map(|h| h.map(FoldValue::Hops)),
        ),
    }
}
