//! Replicated read-scaling tier: one group-committed admission log fanned
//! out to `k` independent replicas of the window structure, each owned by
//! its own writer thread with its own reader shards.
//!
//! A single [`crate::Service`] tops out when one reader pool saturates —
//! every query batch, no matter how many clients submit, funnels through
//! one writer's publish→serve→retire cycle. The replica tier multiplies
//! the read side without touching write semantics:
//!
//! ```text
//!   clients ──► admission thread ──► OpLog (WAL-framed, in memory)
//!    insert /      (group commit,      │ │ │
//!    expire         log-before-bus     │ │ └─► feeder 2 ─► replica 2
//!    barrier        when durable)      │ └───► feeder 1 ─► replica 1
//!                                      └─────► feeder 0 ─► replica 0
//!   clients ──► serve_at(g, query) ── routed to any replica with fed ≥ g
//! ```
//!
//! * **One log, one order.** Every write is admitted exactly once, by a
//!   single admission thread that merges consecutive ops exactly like the
//!   single-service writer (positions concatenate, deltas add) and appends
//!   one record per merged group to the [`OpLog`]. The record index *is*
//!   the generation — the same numbering the WAL store and the
//!   single-service writer use, which is what makes replicated answers
//!   comparable (and bit-identical) to a sequential replay.
//! * **The bus is the WAL format.** OpLog records are framed and encoded
//!   with `bimst_wal`'s `[len][crc32][payload]` frames and op codec, so a
//!   durable replica set appends the *same bytes* to disk (before the bus
//!   — log-before-publish) and a rejoining replica can switch seamlessly
//!   from disk replay ([`bimst_wal::ReplayCursor`]) to bus tailing at any
//!   record boundary.
//! * **Deterministic replicas.** Each replica applies the same record
//!   sequence to an identically-seeded structure, so at equal generation
//!   every replica is answer-identical — not merely converged. Queries
//!   are coalesced and served per replica by the same
//!   publish→serve→retire protocol as the single service (shared
//!   `shard::serve`), so sharding is invisible here too.
//! * **Bounded-staleness routing.** [`ReplicaSet::serve_at`] routes a
//!   query to a replica whose *fed* watermark (records enqueued on its
//!   apply channel) has reached the caller's minimum generation. FIFO
//!   channel order then guarantees the query is answered at a generation
//!   ≥ the watermark: the feeder enqueues apply messages *before* it
//!   publishes the watermark, and the router enqueues the query *after*
//!   reading it. `serve_at(barrier().wait()?, ..)` is read-your-writes;
//!   `query` (min 0) is serve-anywhere.
//! * **Fail-stop per replica, not per set.** A killed replica stops
//!   serving; the router skips it. [`ReplicaSet::restart`] rebuilds it
//!   from the newest checkpoint — in-memory (installed by replica 0) or,
//!   for a durable set, replayed from the on-disk log — and its feeder
//!   catches up in [`ReplicaSetConfig::catchup_batch`]-sized batches
//!   until it rejoins the live bus. Checkpoint + replay is the same
//!   prefix-equivalence contract recovery pins, so a rejoined replica is
//!   again bit-identical at every generation it serves.
//!
//! `tests/prop_replicas.rs` pins the whole contract differentially:
//! every replica against a sequential replay at every barrier, including
//! a kill/restart mid-stream.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bimst_graphgen::Op;
use bimst_primitives::VertexId;
use bimst_sliding::{SwConn, SwConnEager, WindowCheckpoint};
use bimst_wal::{
    decode_op, encode_op, write_frame, Checkpoint, Frames, Meta, ReplayCursor, Store, SyncPolicy,
};

use crate::reader::{Partial, ReaderPool};
use crate::shard::{serve, RunEntry, ServeScratch, SvcObs};
use crate::{Answered, BarrierTicket, QueryReq, QueryTicket, ServeWindow, ServiceClosed};

/// Shape of a [`ReplicaSet`].
#[derive(Clone, Copy, Debug)]
pub struct ReplicaSetConfig {
    /// Number of replicas (logical copies of the window, each with its
    /// own writer thread and reader pool). Clamped to ≥ 1.
    pub replicas: usize,
    /// Reader workers *per replica* (see [`crate::ServiceConfig::readers`]).
    pub readers: usize,
    /// Capacity of each bounded queue: the admission queue and every
    /// per-replica apply queue. Clamped to ≥ 1.
    pub queue_cap: usize,
    /// Group-commit budget of the admission thread, in edges (see
    /// [`crate::ServiceConfig::write_budget`]).
    pub write_budget: usize,
    /// Replica 0 installs an in-memory checkpoint after at least this
    /// many admitted write ops (`0` = never; restarts then replay from
    /// generation 0 or the store's newest on-disk checkpoint). The
    /// durable constructors deliberately do **not** write mid-stream
    /// on-disk checkpoints: the store's segment-naming invariant ties
    /// checkpoint generation to the record count, which only the single
    /// admission thread knows — so restart positioning uses
    /// [`bimst_wal::ReplayCursor::seek`] instead.
    pub checkpoint_every: u64,
    /// How many log records a feeder hands its replica per apply message
    /// while catching up (and per bus poll when live). Clamped to ≥ 1.
    pub catchup_batch: usize,
    /// When the admission thread fsyncs WAL appends (durable sets only;
    /// see [`crate::ServiceConfig::sync`]). Under [`SyncPolicy::Always`] the
    /// group-commit merge is disabled so record = op.
    pub sync: SyncPolicy,
}

impl Default for ReplicaSetConfig {
    fn default() -> Self {
        ReplicaSetConfig {
            replicas: 2,
            readers: 2,
            queue_cap: 1024,
            write_budget: 1 << 14,
            checkpoint_every: 1 << 12,
            catchup_batch: 4096,
            sync: SyncPolicy::GroupCommit,
        }
    }
}

/// The in-memory op bus: WAL-framed records appended once by the
/// admission thread, tailed independently by every feeder. `base` is the
/// generation of the first buffered record (> 0 only for a recovered
/// set, whose prefix lives in the store); nothing is pruned after boot,
/// so any feeder position ≥ `base` is always servable.
struct LogInner {
    base: u64,
    /// Concatenated `[len][crc32][payload]` frames.
    buf: Vec<u8>,
    /// Byte offset of each record's frame in `buf` (index = gen − base).
    offsets: Vec<usize>,
    /// Newest in-memory checkpoint (installed by replica 0); restarts
    /// rebuild from it instead of replaying the whole log.
    ckpt: Option<Checkpoint>,
    closed: bool,
}

struct OpLog {
    inner: Mutex<LogInner>,
    grew: Condvar,
    /// Mirror of `base + offsets.len()`, readable without the lock.
    gen: AtomicU64,
}

impl OpLog {
    fn new(base: u64, ckpt: Option<Checkpoint>) -> OpLog {
        OpLog {
            inner: Mutex::new(LogInner {
                base,
                buf: Vec::new(),
                offsets: Vec::new(),
                ckpt,
                closed: false,
            }),
            grew: Condvar::new(),
            gen: AtomicU64::new(base),
        }
    }

    /// Appends one record (one write group); returns the new generation.
    fn append(&self, op: &Op) -> u64 {
        let mut payload = Vec::with_capacity(bimst_wal::encoded_len(op));
        encode_op(op, &mut payload);
        let mut inner = self.inner.lock().unwrap();
        let at = inner.buf.len();
        inner.offsets.push(at);
        write_frame(&mut inner.buf, &payload);
        let gen = inner.base + inner.offsets.len() as u64;
        // Publish the new generation before waking tailing feeders: a
        // woken feeder re-reads under the lock anyway, the atomic is for
        // lock-free reads (router, metrics, barrier answers).
        self.gen.store(gen, Ordering::Release);
        drop(inner);
        self.grew.notify_all();
        gen
    }

    /// Blocks until records past `from` exist, then decodes up to `max`
    /// of them. `None` means no more will ever come: the log is closed
    /// and drained past `from`, or `stop` was raised.
    fn wait_batch(&self, from: u64, max: usize, stop: &AtomicBool) -> Option<Vec<Op>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            assert!(
                from >= inner.base,
                "bimst-service: replica feeder at generation {from} fell behind \
                 the bus base {} (restart from a checkpoint instead)",
                inner.base
            );
            let have = inner.base + inner.offsets.len() as u64;
            if from < have {
                let first = (from - inner.base) as usize;
                let count = ((have - from) as usize).min(max.max(1));
                let mut frames = Frames::new(&inner.buf[inner.offsets[first]..]);
                let mut ops = Vec::with_capacity(count);
                while ops.len() < count {
                    let payload = frames
                        .next_frame()
                        .expect("bimst-service: op bus frame missing for an indexed record");
                    ops.push(
                        decode_op(payload).expect("bimst-service: op bus record failed to decode"),
                    );
                }
                return Some(ops);
            }
            if stop.load(Ordering::Acquire) || inner.closed {
                return None;
            }
            let (guard, _) = self
                .grew
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap();
            inner = guard;
        }
    }

    /// Installs a checkpoint if it is newer than the current one.
    fn install_ckpt(&self, ck: Checkpoint) {
        let mut inner = self.inner.lock().unwrap();
        if inner
            .ckpt
            .as_ref()
            .is_none_or(|old| old.generation < ck.generation)
        {
            inner.ckpt = Some(ck);
        }
    }

    fn newest_ckpt(&self) -> Option<Checkpoint> {
        self.inner.lock().unwrap().ckpt.clone()
    }

    /// Marks the log complete (no more appends) and wakes every tailer.
    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.grew.notify_all();
    }

    /// Wakes every tailer so it can observe a raised stop flag.
    fn nudge(&self) {
        let _guard = self.inner.lock().unwrap();
        self.grew.notify_all();
    }

    fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }
}

/// A write or barrier, as submitted to the admission thread.
enum LogReq {
    Insert(Vec<(VertexId, VertexId)>),
    Expire(u64),
    /// Resolves with the generation once every prior write is logged (and
    /// therefore, by bus order, bound for every replica).
    Barrier(Sender<u64>),
}

/// What a feeder hands its replica's writer. Writes arrive pre-merged
/// (`groups` log records folded into one apply — positions concatenate,
/// deltas add), so the writer's generation still counts records exactly.
enum RepReq {
    Insert {
        edges: Vec<(VertexId, VertexId)>,
        groups: u64,
    },
    Expire {
        delta: u64,
        groups: u64,
    },
    Query {
        req: QueryReq,
        resp: Sender<Answered>,
        at: Option<std::time::Instant>,
    },
    Metrics(Sender<bimst_obs::Snapshot>),
}

/// The admission loop: single consumer of the client-facing write queue,
/// single producer of the op bus (and, for a durable set, the WAL store).
/// Merging mirrors the single-service writer; the write path is **log
/// before publish**: a group's record hits the store (and is fsynced,
/// per policy) before any replica can observe it on the bus, so no
/// served answer can ever out-run the disk — and a rejoining replica's
/// disk replay always covers every generation the bus has published.
fn admission_main(
    rx: Receiver<LogReq>,
    log: Arc<OpLog>,
    mut store: Option<Store>,
    cfg: ReplicaSetConfig,
) {
    let merge = !(store.is_some() && cfg.sync == SyncPolicy::Always);
    let mut carry: Option<LogReq> = None;
    let mut wbuf: Vec<(VertexId, VertexId)> = Vec::new();
    loop {
        let first = match carry.take() {
            Some(r) => r,
            None => match rx.recv() {
                Ok(r) => r,
                Err(_) => break, // every handle dropped and queue drained
            },
        };
        match first {
            LogReq::Insert(edges) => {
                wbuf.clear();
                wbuf.extend_from_slice(&edges);
                while merge && wbuf.len() < cfg.write_budget.max(1) {
                    match rx.try_recv() {
                        Ok(LogReq::Insert(more)) => wbuf.extend_from_slice(&more),
                        Ok(other) => {
                            carry = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                if let Some(s) = store.as_mut() {
                    s.append_insert(&wbuf)
                        .expect("bimst-service: WAL append failed");
                    if cfg.sync != SyncPolicy::None {
                        s.sync().expect("bimst-service: WAL fsync failed");
                    }
                }
                log.append(&Op::Insert(std::mem::take(&mut wbuf)));
            }
            LogReq::Expire(delta) => {
                let mut delta = delta;
                if merge {
                    loop {
                        match rx.try_recv() {
                            Ok(LogReq::Expire(more)) => delta = delta.saturating_add(more),
                            Ok(other) => {
                                carry = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                        }
                    }
                }
                if let Some(s) = store.as_mut() {
                    s.append_expire(delta)
                        .expect("bimst-service: WAL append failed");
                    if cfg.sync != SyncPolicy::None {
                        s.sync().expect("bimst-service: WAL fsync failed");
                    }
                }
                log.append(&Op::Expire(delta));
            }
            LogReq::Barrier(resp) => {
                let _ = resp.send(log.generation());
            }
        }
    }
    // Orderly shutdown: whatever the policy deferred is synced now.
    if let Some(s) = store.as_mut() {
        let _ = s.sync();
    }
    log.close();
}

/// One feeder: tails the log (optionally a disk prefix first, for a
/// rejoin) and pushes merged apply messages to its replica's writer.
/// The `fed` watermark is published only *after* the records it covers
/// are enqueued — that ordering is the entire freshness guarantee.
struct Feeder {
    log: Arc<OpLog>,
    tx: SyncSender<RepReq>,
    fed: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    notify: Arc<(Mutex<()>, Condvar)>,
    /// `(cursor, until)`: replay from disk up to generation `until`
    /// (the bus generation at restart time), then switch to the bus.
    disk: Option<(ReplayCursor, u64)>,
    pos: u64,
    batch: usize,
}

impl Feeder {
    fn run(mut self) {
        if let Some((mut cur, until)) = self.disk.take() {
            // Disk phase. The admission thread appends to the store
            // before the bus, so the store always holds every record the
            // bus has published: this loop terminates at `until` without
            // ever waiting on the file.
            while self.pos < until && !self.stop.load(Ordering::Acquire) {
                let want = ((until - self.pos) as usize).min(self.batch.max(1));
                let ops = cur
                    .next_batch(want)
                    .expect("bimst-service: replica rejoin replay failed");
                assert!(
                    !ops.is_empty(),
                    "bimst-service: WAL ended at generation {} but the bus reached {until} \
                     (log-before-publish violated?)",
                    self.pos
                );
                if !self.ship(ops) {
                    return;
                }
            }
        }
        // Bus phase: tail until the log closes (orderly shutdown, after
        // draining — nothing admitted is skipped) or the stop flag is
        // raised (kill).
        while let Some(ops) = self.log.wait_batch(self.pos, self.batch, &self.stop) {
            if !self.ship(ops) {
                return;
            }
        }
    }

    /// Merges a decoded record run into apply messages and enqueues them;
    /// then publishes the watermark and wakes the router. Returns `false`
    /// if the writer is gone (killed replica).
    fn ship(&mut self, ops: Vec<Op>) -> bool {
        let advanced = ops.len() as u64;
        let mut queue: Vec<RepReq> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(mut more) => {
                    if matches!(queue.last(), Some(RepReq::Insert { .. })) {
                        if let Some(RepReq::Insert { edges, groups }) = queue.last_mut() {
                            edges.append(&mut more);
                            *groups += 1;
                        }
                    } else {
                        queue.push(RepReq::Insert {
                            edges: more,
                            groups: 1,
                        });
                    }
                }
                Op::Expire(more) => {
                    if matches!(queue.last(), Some(RepReq::Expire { .. })) {
                        if let Some(RepReq::Expire { delta, groups }) = queue.last_mut() {
                            *delta = delta.saturating_add(more);
                            *groups += 1;
                        }
                    } else {
                        queue.push(RepReq::Expire {
                            delta: more,
                            groups: 1,
                        });
                    }
                }
                // The admission thread only logs writes; a foreign record
                // kind still occupies a generation, so it must advance
                // the replica's count to keep numbering aligned.
                _ => queue.push(RepReq::Expire {
                    delta: 0,
                    groups: 1,
                }),
            }
        }
        for msg in queue {
            if self.tx.send(msg).is_err() {
                return false;
            }
        }
        self.pos += advanced;
        // Watermark after enqueue: a router that reads `fed ≥ g` and then
        // sends a query on the same FIFO channel knows the apply messages
        // for every generation ≤ g sit ahead of it.
        self.fed.store(self.pos, Ordering::Release);
        let _guard = self.notify.0.lock().unwrap();
        self.notify.1.notify_all();
        true
    }
}

/// One replica's writer loop: applies pre-merged write groups, coalesces
/// query runs, and serves them through the shared publish→serve→retire
/// protocol. Replica 0 doubles as the set's checkpointer.
#[allow(clippy::too_many_arguments)]
fn replica_main<W: ServeWindow + WindowCheckpoint>(
    mut w: W,
    idx: usize,
    readers: usize,
    rx: Receiver<RepReq>,
    mut generation: u64,
    applied: Arc<AtomicU64>,
    log: Arc<OpLog>,
    checkpoint_every: u64,
    rec: bimst_obs::Recorder,
) {
    let obs = SvcObs::new(rec);
    obs.generation.set(generation);
    // Per-replica staleness: bus generation minus applied generation,
    // sampled after every apply. Keyed by index so a set-wide absorbed
    // snapshot keeps them apart (`gauges_with_prefix("replica_")`).
    let lag = obs.rec.gauge(&format!("replica_{idx}_lag"));
    let mut since_ckpt = 0u64;
    let mut pool: ReaderPool<W> = ReaderPool::spawn(readers);
    let (done_tx, done_rx) = channel::<Partial>();
    let mut carry: Option<RepReq> = None;
    let mut run: Vec<RunEntry> = Vec::new();
    let mut scratch = ServeScratch::default();

    loop {
        let first = match carry.take() {
            Some(r) => r,
            None => match rx.recv() {
                Ok(r) => r,
                Err(_) => break, // feeder and router both gone; drained
            },
        };
        match first {
            RepReq::Insert { edges, groups } => {
                w.batch_insert(&edges);
                generation += groups;
                applied.store(generation, Ordering::Release);
                obs.groups.add(groups);
                obs.ops_insert.add(groups);
                obs.generation.set(generation);
                lag.set(log.generation().saturating_sub(generation));
                since_ckpt += groups;
            }
            RepReq::Expire { delta, groups } => {
                w.batch_expire(delta);
                generation += groups;
                applied.store(generation, Ordering::Release);
                obs.groups.add(groups);
                obs.ops_expire.add(groups);
                obs.generation.set(generation);
                lag.set(log.generation().saturating_sub(generation));
                since_ckpt += groups;
            }
            RepReq::Metrics(resp) => {
                let mut snap = obs.rec.snapshot();
                if let Some(r) = w.obs_recorder() {
                    snap.absorb(&r.snapshot());
                }
                let _ = resp.send(snap);
            }
            RepReq::Query { req, resp, at } => {
                run.clear();
                run.push((req, resp, at));
                loop {
                    match rx.try_recv() {
                        Ok(RepReq::Query { req, resp, at }) => run.push((req, resp, at)),
                        Ok(other) => {
                            carry = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                serve(
                    &w,
                    generation,
                    &mut pool,
                    &done_tx,
                    &done_rx,
                    &mut run,
                    &mut scratch,
                    &obs,
                );
            }
        }
        // Replica 0 is the checkpointer: the checkpoint is installed on
        // the bus, not the store (see `ReplicaSetConfig::checkpoint_every`),
        // so any replica can restart from it regardless of durability.
        if idx == 0 && checkpoint_every != 0 && since_ckpt >= checkpoint_every {
            let (tw, t) = w.window();
            log.install_ckpt(Checkpoint {
                generation,
                tw,
                t,
                edges: w.compact_edges(),
            });
            since_ckpt = 0;
        }
    }
    drop(done_tx);
    pool.shutdown();
}

/// One replica's runtime handles, as the router sees them. `tx: None`
/// marks a killed replica (skipped by routing until restarted).
struct ReplicaSlot {
    tx: Option<SyncSender<RepReq>>,
    /// Records enqueued on the apply channel (the freshness watermark).
    fed: Arc<AtomicU64>,
    /// Records applied by the writer (drives the lag gauge; also the
    /// restart floor for tests).
    applied: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    feeder: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

/// `k` replicas of one logical sliding window behind one admission log.
///
/// Writes go through [`ReplicaSet::insert`] / [`ReplicaSet::expire`] and
/// are applied by every replica in the same order; reads go through
/// [`ReplicaSet::query`] (any replica) or [`ReplicaSet::serve_at`]
/// (bounded staleness). See the module docs for the protocol and the
/// README's *Replication* section for the freshness semantics table.
///
/// ```
/// use bimst_service::{QueryReq, ReplicaSet, ReplicaSetConfig};
///
/// let set = ReplicaSet::eager(100, 42, ReplicaSetConfig::default());
/// set.insert((0..98).map(|v| (v, v + 1)).collect()).unwrap();
/// let g = set.barrier().unwrap().wait().unwrap();
/// // Read-your-writes: served by any replica that has reached g.
/// let t = set.serve_at(g, QueryReq::WindowConnected(vec![(0, 98), (0, 99)])).unwrap();
/// let a = t.wait().unwrap();
/// assert!(a.generation >= g);
/// assert_eq!(a.resp.into_window_connected().unwrap(), vec![true, false]);
/// set.shutdown();
/// ```
pub struct ReplicaSet {
    log: Arc<OpLog>,
    admission_tx: Option<SyncSender<LogReq>>,
    admission: Option<JoinHandle<()>>,
    replicas: Vec<ReplicaSlot>,
    /// Round-robin cursor for fresh-enough replicas.
    rr: AtomicUsize,
    /// Router ↔ feeder rendezvous: feeders notify after advancing a
    /// watermark, `serve_at` waits here when no replica is fresh enough.
    notify: Arc<(Mutex<()>, Condvar)>,
    /// Router metrics (`replica_route_*`), folded into
    /// [`ReplicaSet::metrics_snapshot`].
    rec: bimst_obs::Recorder,
    route_queries: bimst_obs::Counter,
    route_lagged: bimst_obs::Counter,
    route_waits: bimst_obs::Counter,
    n: usize,
    seed: u64,
    eager: bool,
    dir: Option<PathBuf>,
    cfg: ReplicaSetConfig,
}

impl ReplicaSet {
    /// An in-memory replica set over eagerly-maintained windows
    /// ([`SwConnEager`]), each seeded identically.
    pub fn eager(n: usize, seed: u64, cfg: ReplicaSetConfig) -> ReplicaSet {
        ReplicaSet::boot(n, seed, true, None, None, 0, None, &[], cfg)
    }

    /// An in-memory replica set over lazily-maintained windows
    /// ([`SwConn`]).
    pub fn lazy(n: usize, seed: u64, cfg: ReplicaSetConfig) -> ReplicaSet {
        ReplicaSet::boot(n, seed, false, None, None, 0, None, &[], cfg)
    }

    /// A durable replica set: the admission thread writes every group to
    /// a fresh WAL store at `path` *before* publishing it to the
    /// replicas. [`ReplicaSet::recover`] resumes from the directory.
    pub fn eager_durable(
        path: impl AsRef<Path>,
        n: usize,
        seed: u64,
        cfg: ReplicaSetConfig,
    ) -> io::Result<ReplicaSet> {
        let meta = Meta {
            n: n as u64,
            seed,
            eager: true,
            tenants: false,
        };
        let store = Store::create(&path, &meta)?;
        Ok(ReplicaSet::boot(
            n,
            seed,
            true,
            Some(path.as_ref().to_path_buf()),
            Some(store),
            0,
            None,
            &[],
            cfg,
        ))
    }

    /// [`ReplicaSet::eager_durable`] over lazy windows.
    pub fn lazy_durable(
        path: impl AsRef<Path>,
        n: usize,
        seed: u64,
        cfg: ReplicaSetConfig,
    ) -> io::Result<ReplicaSet> {
        let meta = Meta {
            n: n as u64,
            seed,
            eager: false,
            tenants: false,
        };
        let store = Store::create(&path, &meta)?;
        Ok(ReplicaSet::boot(
            n,
            seed,
            false,
            Some(path.as_ref().to_path_buf()),
            Some(store),
            0,
            None,
            &[],
            cfg,
        ))
    }

    /// Recovers a durable replica set from `path`: every replica is
    /// rebuilt from the newest on-disk checkpoint plus the intact log
    /// tail (exactly the single-service recovery contract), and the set
    /// resumes at the recovered generation.
    pub fn recover(path: impl AsRef<Path>, cfg: ReplicaSetConfig) -> io::Result<ReplicaSet> {
        let (store, meta, rec) = Store::open(&path)?;
        Ok(ReplicaSet::boot(
            meta.n as usize,
            meta.seed,
            meta.eager,
            Some(path.as_ref().to_path_buf()),
            Some(store),
            rec.generation,
            rec.checkpoint,
            &rec.tail,
            cfg,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn boot(
        n: usize,
        seed: u64,
        eager: bool,
        dir: Option<PathBuf>,
        store: Option<Store>,
        base: u64,
        ckpt: Option<Checkpoint>,
        tail: &[Op],
        cfg: ReplicaSetConfig,
    ) -> ReplicaSet {
        let log = Arc::new(OpLog::new(base, ckpt.clone()));
        let notify = Arc::new((Mutex::new(()), Condvar::new()));
        let (admission_tx, admission_rx) = std::sync::mpsc::sync_channel(cfg.queue_cap.max(1));
        let admission = {
            let log = log.clone();
            std::thread::Builder::new()
                .name("bimst-replica-log".into())
                .spawn(move || admission_main(admission_rx, log, store, cfg))
                .expect("bimst-service: spawn replica admission thread")
        };
        let rec = bimst_obs::Recorder::new();
        let mut set = ReplicaSet {
            log,
            admission_tx: Some(admission_tx),
            admission: Some(admission),
            replicas: Vec::new(),
            rr: AtomicUsize::new(0),
            notify,
            route_queries: rec.counter("replica_route_queries"),
            route_lagged: rec.counter("replica_route_lagged"),
            route_waits: rec.counter("replica_route_waits"),
            rec,
            n,
            seed,
            eager,
            dir,
            cfg,
        };
        for i in 0..cfg.replicas.max(1) {
            let slot = set.spawn_slot(i, base, ckpt.as_ref(), tail, None);
            set.replicas.push(slot);
        }
        set
    }

    /// Builds one replica's window at `base` (checkpoint + replayed tail,
    /// the recovery rebuild) and spawns its writer + feeder. `disk` is a
    /// positioned replay cursor for a rejoin's catch-up phase.
    fn spawn_slot(
        &self,
        idx: usize,
        base: u64,
        ckpt: Option<&Checkpoint>,
        tail: &[Op],
        disk: Option<(ReplayCursor, u64)>,
    ) -> ReplicaSlot {
        fn rebuild<W: ServeWindow + WindowCheckpoint>(
            w: &mut W,
            ckpt: Option<&Checkpoint>,
            tail: &[Op],
        ) {
            if let Some(ck) = ckpt {
                w.restore(&ck.edges, ck.tw, ck.t);
            }
            for op in tail {
                match op {
                    Op::Insert(edges) => {
                        w.batch_insert(edges);
                    }
                    Op::Expire(delta) => w.batch_expire(*delta),
                    _ => {}
                }
            }
        }

        let (tx, rx) = std::sync::mpsc::sync_channel::<RepReq>(self.cfg.queue_cap.max(1));
        let fed = Arc::new(AtomicU64::new(base));
        let applied = Arc::new(AtomicU64::new(base));
        let stop = Arc::new(AtomicBool::new(false));
        let rec = bimst_obs::Recorder::new();
        let (log, readers) = (self.log.clone(), self.cfg.readers);
        let (ap, ckpt_every) = (applied.clone(), self.cfg.checkpoint_every);
        let writer = {
            let name = format!("bimst-replica-writer-{idx}");
            let b = std::thread::Builder::new().name(name);
            if self.eager {
                let mut w = SwConnEager::new(self.n, self.seed);
                rebuild(&mut w, ckpt, tail);
                b.spawn(move || replica_main(w, idx, readers, rx, base, ap, log, ckpt_every, rec))
            } else {
                let mut w = SwConn::new(self.n, self.seed);
                rebuild(&mut w, ckpt, tail);
                b.spawn(move || replica_main(w, idx, readers, rx, base, ap, log, ckpt_every, rec))
            }
            .expect("bimst-service: spawn replica writer")
        };
        let feeder = Feeder {
            log: self.log.clone(),
            tx: tx.clone(),
            fed: fed.clone(),
            stop: stop.clone(),
            notify: self.notify.clone(),
            disk,
            pos: base,
            batch: self.cfg.catchup_batch.max(1),
        };
        let feeder = std::thread::Builder::new()
            .name(format!("bimst-replica-feeder-{idx}"))
            .spawn(move || feeder.run())
            .expect("bimst-service: spawn replica feeder");
        ReplicaSlot {
            tx: Some(tx),
            fed,
            applied,
            stop,
            feeder: Some(feeder),
            writer: Some(writer),
        }
    }

    /// Number of replica slots (alive or killed).
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The admission log's generation: write groups admitted so far.
    pub fn generation(&self) -> u64 {
        self.log.generation()
    }

    /// Admits an insert batch (blocking under backpressure). Applied by
    /// every replica in admission order.
    pub fn insert(&self, edges: Vec<(VertexId, VertexId)>) -> Result<(), ServiceClosed> {
        self.admission_tx
            .as_ref()
            .ok_or(ServiceClosed)?
            .send(LogReq::Insert(edges))
            .map_err(|_| ServiceClosed)
    }

    /// Admits an expiration of the `delta` oldest stream positions.
    pub fn expire(&self, delta: u64) -> Result<(), ServiceClosed> {
        self.admission_tx
            .as_ref()
            .ok_or(ServiceClosed)?
            .send(LogReq::Expire(delta))
            .map_err(|_| ServiceClosed)
    }

    /// Admits a write barrier: resolves with the generation `g` at which
    /// every previously-admitted write is logged and bus-visible.
    /// `serve_at(g, ..)` after it is read-your-writes on any replica.
    pub fn barrier(&self) -> Result<BarrierTicket, ServiceClosed> {
        let (resp, rx) = std::sync::mpsc::channel();
        self.admission_tx
            .as_ref()
            .ok_or(ServiceClosed)?
            .send(LogReq::Barrier(resp))
            .map_err(|_| ServiceClosed)?;
        Ok(BarrierTicket { rx })
    }

    /// Serves a query batch from any live replica (no freshness floor:
    /// the answering generation is whatever that replica has applied).
    pub fn query(&self, req: QueryReq) -> Result<QueryTicket, ServiceClosed> {
        self.serve_at(0, req)
    }

    /// Serves a query batch from a replica whose watermark has reached
    /// `min_gen` (lag-bounded freshness). Blocks while every live
    /// replica is behind; fails with [`ServiceClosed`] when none is
    /// alive. The answer's [`Answered::generation`] is ≥ `min_gen`.
    pub fn serve_at(&self, min_gen: u64, req: QueryReq) -> Result<QueryTicket, ServiceClosed> {
        let (resp, rx) = std::sync::mpsc::channel();
        let at = bimst_obs::enabled().then(std::time::Instant::now);
        let mut msg = RepReq::Query { req, resp, at };
        loop {
            let k = self.replicas.len();
            let start = self.rr.fetch_add(1, Ordering::Relaxed);
            let mut alive = 0usize;
            let mut lagged = false;
            for j in 0..k {
                let slot = &self.replicas[(start + j) % k];
                let Some(tx) = slot.tx.as_ref() else { continue };
                alive += 1;
                if slot.fed.load(Ordering::Acquire) < min_gen {
                    lagged = true;
                    continue;
                }
                match tx.send(msg) {
                    Ok(()) => {
                        self.route_queries.inc();
                        if lagged {
                            self.route_lagged.inc();
                        }
                        return Ok(QueryTicket { rx });
                    }
                    // Writer died (killed mid-route); try the next one.
                    Err(std::sync::mpsc::SendError(m)) => msg = m,
                }
            }
            if alive == 0 {
                return Err(ServiceClosed);
            }
            // Every live replica is behind `min_gen`: wait for a feeder
            // to advance a watermark (or time out and re-scan, in case
            // the only fresh replica was killed while we slept).
            self.route_waits.inc();
            let guard = self.notify.0.lock().unwrap();
            let _ = self
                .notify
                .1
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
        }
    }

    /// [`ReplicaSet::serve_at`] pinned to replica `i` — for tests and
    /// benchmarks that compare replicas directly. Blocks until replica
    /// `i`'s watermark reaches `min_gen`; [`ServiceClosed`] if it is
    /// killed.
    pub fn query_on(
        &self,
        i: usize,
        min_gen: u64,
        req: QueryReq,
    ) -> Result<QueryTicket, ServiceClosed> {
        let (resp, rx) = std::sync::mpsc::channel();
        let at = bimst_obs::enabled().then(std::time::Instant::now);
        let slot = &self.replicas[i];
        loop {
            let tx = slot.tx.as_ref().ok_or(ServiceClosed)?;
            if slot.fed.load(Ordering::Acquire) >= min_gen {
                self.route_queries.inc();
                return match tx.send(RepReq::Query { req, resp, at }) {
                    Ok(()) => Ok(QueryTicket { rx }),
                    Err(_) => Err(ServiceClosed),
                };
            }
            self.route_waits.inc();
            let guard = self.notify.0.lock().unwrap();
            let _ = self
                .notify
                .1
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
        }
    }

    /// Fail-stops replica `i`: its feeder is stopped and joined, its
    /// writer drains and exits, and the router skips the slot. Writes
    /// keep flowing — the log and the other replicas are untouched.
    pub fn kill(&mut self, i: usize) {
        let slot = &mut self.replicas[i];
        slot.stop.store(true, Ordering::Release);
        self.log.nudge();
        if let Some(f) = slot.feeder.take() {
            let _ = f.join();
        }
        slot.tx = None; // last sender: the writer drains and exits
        if let Some(w) = slot.writer.take() {
            let _ = w.join();
        }
    }

    /// Restarts a killed replica from the newest checkpoint. In-memory
    /// sets rebuild from the bus checkpoint (or generation 0) and replay
    /// the retained bus; durable sets position a [`ReplayCursor`] on the
    /// store and replay *from disk* up to the bus generation at restart
    /// time, then hand over to live bus tailing. Either way the rejoined
    /// replica is bit-identical to the others at every generation it
    /// serves (`tests/prop_replicas.rs` pins this differentially).
    pub fn restart(&mut self, i: usize) -> io::Result<()> {
        assert!(
            self.replicas[i].tx.is_none(),
            "bimst-service: restart of a live replica {i} (kill it first)"
        );
        let bus_ck = self.log.newest_ckpt();
        let (base, ck, disk) = match &self.dir {
            Some(dir) => {
                let start = ReplayCursor::open(dir)?;
                // Rebuild from the newer of the bus checkpoint and the
                // disk one (a recovered set's prefix lives only on disk).
                let bus_gen = bus_ck.as_ref().map_or(0, |c| c.generation);
                let disk_gen = start.checkpoint.as_ref().map_or(0, |c| c.generation);
                let (base, ck) = if bus_gen >= disk_gen {
                    (bus_gen, bus_ck)
                } else {
                    (disk_gen, start.checkpoint)
                };
                let mut cursor = start.cursor;
                cursor.seek(base);
                // Everything the bus has published is on disk already
                // (log-before-publish), so replay to the current bus
                // generation always terminates; the feeder then switches
                // to the bus, whose retained records cover `base ≥
                // log.base` onward.
                (base, ck, Some((cursor, self.log.generation())))
            }
            None => (bus_ck.as_ref().map_or(0, |c| c.generation), bus_ck, None),
        };
        let slot = self.spawn_slot(i, base, ck.as_ref(), &[], disk);
        self.replicas[i] = slot;
        Ok(())
    }

    /// Watermark diagnostics for replica `i`: `(fed, applied)` record
    /// counts (equal when the replica is idle and caught up).
    pub fn watermarks(&self, i: usize) -> (u64, u64) {
        let slot = &self.replicas[i];
        (
            slot.fed.load(Ordering::Acquire),
            slot.applied.load(Ordering::Acquire),
        )
    }

    /// One metrics snapshot for the whole set: router counters, every
    /// live replica's registry (per-replica lag gauges keyed
    /// `replica_<i>_lag`), and the process-global recorder.
    pub fn metrics_snapshot(&self) -> bimst_obs::Snapshot {
        let mut snap = self.rec.snapshot();
        for slot in &self.replicas {
            let Some(tx) = slot.tx.as_ref() else { continue };
            let (resp, rx) = std::sync::mpsc::channel();
            if tx.send(RepReq::Metrics(resp)).is_ok() {
                if let Ok(s) = rx.recv() {
                    snap.absorb(&s);
                }
            }
        }
        snap.absorb(&bimst_obs::global().snapshot());
        snap
    }

    /// Stops admission and drains everything, in dependency order: the
    /// admission thread finishes logging every admitted write and closes
    /// the bus; each feeder drains the bus tail into its replica and
    /// exits; each writer applies and answers everything queued, retires
    /// its readers, and exits. Every admitted op is applied by every
    /// live replica; every admitted query's ticket resolves.
    pub fn shutdown(mut self) {
        self.admission_tx = None;
        if let Some(a) = self.admission.take() {
            let _ = a.join();
        }
        for slot in &mut self.replicas {
            if let Some(f) = slot.feeder.take() {
                let _ = f.join();
            }
            slot.tx = None;
            if let Some(w) = slot.writer.take() {
                let _ = w.join();
            }
        }
    }
}

impl Drop for ReplicaSet {
    /// Dropping without [`ReplicaSet::shutdown`] still drains, but
    /// detached: admission and replica threads finish in the background.
    fn drop(&mut self) {
        self.admission_tx = None;
        for slot in &mut self.replicas {
            slot.tx = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryResp;

    fn ring(n: u32) -> Vec<(u32, u32)> {
        (0..n).map(|v| (v, (v + 1) % n)).collect()
    }

    /// Every replica answers bit-identically at a barrier generation,
    /// and `Answered::generation` respects the freshness floor.
    #[test]
    fn replicas_agree_at_barriers() {
        let set = ReplicaSet::eager(
            200,
            7,
            ReplicaSetConfig {
                replicas: 3,
                ..ReplicaSetConfig::default()
            },
        );
        let mut expect_gen = 0u64;
        for round in 0..10 {
            set.insert(ring(200)).unwrap();
            set.expire(50).unwrap();
            expect_gen += 2;
            let g = set.barrier().unwrap().wait().unwrap();
            assert_eq!(
                g, expect_gen,
                "round {round}: barrier counts admitted groups"
            );
            let req = QueryReq::WindowConnected(vec![(0, 100), (0, 199), (3, 4)]);
            let answers: Vec<Answered> = (0..3)
                .map(|i| {
                    let t = set.query_on(i, g, req.clone()).unwrap();
                    let a = t.wait().unwrap();
                    assert!(a.generation >= g, "replica {i} served below the floor");
                    a
                })
                .collect();
            assert_eq!(answers[0].resp, answers[1].resp, "round {round}");
            assert_eq!(answers[1].resp, answers[2].resp, "round {round}");
        }
        set.shutdown();
    }

    /// serve_at routes around a killed replica; restart rejoins from the
    /// bus checkpoint and answers identically again.
    #[test]
    fn kill_restart_rejoins_in_memory() {
        let mut set = ReplicaSet::lazy(
            100,
            11,
            ReplicaSetConfig {
                replicas: 2,
                checkpoint_every: 4,
                ..ReplicaSetConfig::default()
            },
        );
        for _ in 0..6 {
            set.insert(ring(100)).unwrap();
            set.expire(30).unwrap();
        }
        let g = set.barrier().unwrap().wait().unwrap();
        set.kill(1);
        // Routing skips the dead slot but stays serviceable.
        let t = set
            .serve_at(g, QueryReq::ComponentSize(vec![0, 50]))
            .unwrap();
        let live = t.wait().unwrap();
        for _ in 0..4 {
            set.insert(ring(100)).unwrap();
        }
        set.restart(1).unwrap();
        let g2 = set.barrier().unwrap().wait().unwrap();
        let a0 = set
            .query_on(0, g2, QueryReq::ComponentSize(vec![0, 50]))
            .unwrap()
            .wait()
            .unwrap();
        let a1 = set
            .query_on(1, g2, QueryReq::ComponentSize(vec![0, 50]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a0.resp, a1.resp, "rejoined replica diverged");
        assert_eq!(live.resp, QueryResp::ComponentSize(vec![100, 100]));
        set.shutdown();
    }

    /// A durable set's restart replays from disk; recover resumes the
    /// whole set at the logged generation.
    #[test]
    fn durable_restart_and_recover() {
        let dir = std::env::temp_dir().join(format!(
            "bimst-replica-dur-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let cfg = ReplicaSetConfig {
            replicas: 2,
            checkpoint_every: 0, // force restart to replay from gen 0
            ..ReplicaSetConfig::default()
        };
        let mut set = ReplicaSet::eager_durable(&dir, 64, 3, cfg).unwrap();
        for _ in 0..5 {
            set.insert(ring(64)).unwrap();
            set.expire(16).unwrap();
        }
        let g = set.barrier().unwrap().wait().unwrap();
        set.kill(0);
        set.insert(ring(64)).unwrap();
        set.restart(0).unwrap();
        let g2 = set.barrier().unwrap().wait().unwrap();
        assert!(g2 > g);
        let req = QueryReq::WindowConnected(vec![(0, 32), (1, 63)]);
        let a0 = set.query_on(0, g2, req.clone()).unwrap().wait().unwrap();
        let a1 = set.query_on(1, g2, req.clone()).unwrap().wait().unwrap();
        assert_eq!(a0.resp, a1.resp, "disk-replayed replica diverged");
        set.shutdown();

        // The same directory recovers into a fresh set at the same
        // generation, answering identically.
        let set = ReplicaSet::recover(&dir, cfg).unwrap();
        assert_eq!(set.generation(), g2);
        let a = set.serve_at(g2, req).unwrap().wait().unwrap();
        assert_eq!(a.resp, a0.resp, "recovered set diverged");
        set.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The watermark/lag plumbing: metrics expose per-replica lag keys
    /// and the router counters move.
    #[test]
    fn metrics_expose_replica_lag() {
        bimst_obs::set_enabled(true);
        if !bimst_obs::enabled() {
            return; // no-op obs build: nothing to observe
        }
        let set = ReplicaSet::eager(
            50,
            5,
            ReplicaSetConfig {
                replicas: 2,
                ..ReplicaSetConfig::default()
            },
        );
        set.insert(ring(50)).unwrap();
        let g = set.barrier().unwrap().wait().unwrap();
        let _ = set
            .serve_at(g, QueryReq::WindowConnected(vec![(0, 25)]))
            .unwrap()
            .wait()
            .unwrap();
        let snap = set.metrics_snapshot();
        assert!(snap.counter("replica_route_queries").unwrap_or(0) >= 1);
        assert!(snap.gauge("replica_0_lag").is_some());
        assert!(snap.gauge("replica_1_lag").is_some());
        let (fed, applied) = set.watermarks(0);
        assert!(fed >= applied);
        set.shutdown();
    }
}
