//! Persistent sharded serving runtime over the sliding-window MSF
//! structures: one writer thread owning a [`SwConn`]/[`SwConnEager`]
//! instance, a pool of reader workers each owning a
//! [`bimst_query::QueryBatch`] shard, connected by channels.
//!
//! PR 3's query engine made a *single caller* fast: `ReadHandle` is a
//! shared borrow, so the borrow checker guarantees no insert runs while a
//! query batch is in flight — but only within one thread of control. A
//! serving workload has many clients submitting writes and reads
//! concurrently, which needs that same guarantee as a **runtime protocol**:
//!
//! ```text
//!                    bounded op queue (backpressure)
//!   clients ──────────────┐
//!    insert / expire      │          ┌──────────────────────────────┐
//!    query batches     ┌──▼───────┐  │  generation g snapshot       │
//!    (tickets)         │  writer  │──┼──► reader 0 (QueryBatch)     │
//!                      │  thread  │  │──► reader 1 (QueryBatch)     │
//!                      │ owns the │  │──► …        (QueryBatch)     │
//!                      │ structure│◄─┼─── partial answers (join)    │
//!                      └──────────┘  └──────────────────────────────┘
//! ```
//!
//! * **Group commit.** The writer drains the admission queue: consecutive
//!   insert ops are merged (up to [`ServiceConfig::write_budget`] edges)
//!   into one `batch_insert`, consecutive expirations into one
//!   `batch_expire` — amortizing exactly the way the paper's
//!   `O(ℓ lg(1 + n/ℓ))` batch bound assumes. Stream positions concatenate
//!   and expiry deltas add, so merging never changes the structure's state
//!   or any answer (see `bimst_sliding::SlidingWrite`).
//! * **Generations and epoch handoff.** Every applied write group
//!   increments a generation counter. A query batch admitted at generation
//!   *g* (i.e. after the *g*-th write group and before the *g+1*-st) is
//!   answered from the structure *as of g*: the writer publishes a
//!   reader-side snapshot of the structure, fans the coalesced query
//!   work out to the reader pool, and **does not touch the structure again
//!   until every partial answer has been collected** (the join barrier is
//!   the epoch retire). That is PR 3's compile-time borrow discipline —
//!   many readers XOR one writer — restated as a runtime protocol across
//!   the channel boundary.
//! * **Query coalescing.** Queued query batches of the same kind are merged
//!   into one shared-work plan before dispatch (one sorted distinct-endpoint
//!   root pass, one set of shared CPT chunks), then answers are split back
//!   per request. Answers are bit-identical to the per-query loop, so
//!   coalescing and sharding are invisible to clients.
//! * **Backpressure.** The admission queue is bounded
//!   ([`ServiceConfig::queue_cap`]): [`ServiceHandle::insert`] blocks when
//!   the service is behind, [`ServiceHandle::try_insert`] returns the op
//!   back with [`TrySubmitError::Full`] so the client can retry or shed
//!   load. A submission that returns `Ok` is **admitted**: it will be
//!   applied (writes) or answered (queries) even across shutdown.
//! * **Drain-ordered shutdown.** [`Service::shutdown`] stops admission and
//!   joins the writer, which (1) keeps processing the queue in admission
//!   order until every handle is dropped and the queue is empty, (2)
//!   retires the reader pool, and only then (3) drops the structure. Every
//!   admitted query's ticket resolves.
//!
//! Pick `bimst-service` when ops originate on more than one thread or you
//! need admission-order semantics under mixed read/write traffic; drive a
//! raw [`bimst_query::QueryBatch`] inline when a single loop owns the
//! structure — the service's channel hop costs ~µs per batch (see
//! `BENCH_serve.json`, which pairs the two on the same op stream).
//!
//! # Quick start
//!
//! ```
//! use bimst_service::{QueryReq, Service, ServiceConfig};
//!
//! let svc = Service::eager(100, 42, ServiceConfig::default());
//! // A path over vertices 0..=98; vertex 99 stays isolated.
//! svc.insert((0..98).map(|v| (v, v + 1)).collect()).unwrap();
//! let ticket = svc.query(QueryReq::WindowConnected(vec![(0, 98), (0, 99)])).unwrap();
//! let answered = ticket.wait().unwrap();
//! assert_eq!(answered.generation, 1); // admitted after the first write group
//! assert_eq!(answered.resp.into_window_connected().unwrap(), vec![true, false]);
//! svc.shutdown();
//! ```

use std::io;
use std::path::Path;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

use bimst_graphgen::Op;
use bimst_primitives::{FoldKind, FoldValue, VertexId, WKey};
use bimst_query::WindowConnectivity;
use bimst_sliding::{
    SlidingWrite, SwConn, SwConnEager, TenantConfig, TenantSet, TenantSpec, WindowCheckpoint,
};

mod reader;
mod replica;
mod shard;

use shard::{DurCtl, Req};

pub use bimst_wal::SyncPolicy;
pub use replica::{ReplicaSet, ReplicaSetConfig};

/// What a window structure must provide to be served: the write surface
/// (`bimst_sliding::SlidingWrite`, driven by the writer thread) and the
/// read surface (`bimst_query::WindowConnectivity`, consumed by the reader
/// pool through snapshots — hence `Sync`). Blanket-implemented; both
/// [`SwConn`] and [`SwConnEager`] qualify.
pub trait ServeWindow: SlidingWrite + WindowConnectivity + Send + Sync + 'static {}

impl<W: SlidingWrite + WindowConnectivity + Send + Sync + 'static> ServeWindow for W {}

/// Shape of a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Reader workers (query shards). Each owns a `QueryBatch` whose
    /// scratch persists across generations; coalesced query batches are
    /// split across them in contiguous ranges. Clamped to ≥ 1.
    pub readers: usize,
    /// Capacity of the bounded admission queue (ops, not edges). Clamped
    /// to ≥ 1. Blocking submits park when full; `try_*` submits return
    /// [`TrySubmitError::Full`].
    pub queue_cap: usize,
    /// Group-commit budget: the writer merges consecutive queued insert
    /// ops until the merged batch holds at least this many edges (a single
    /// submitted op larger than the budget is still applied whole).
    pub write_budget: usize,
    /// Merge adjacent queued query batches of the same kind into one
    /// shared-work plan. Disabling serves each request as its own plan
    /// (answers are identical either way).
    pub coalesce: bool,
    /// When the writer fsyncs WAL appends — only meaningful for durable
    /// services ([`Service::eager_durable`] / [`Service::lazy_durable`] /
    /// [`Service::recover`]); ignored by the in-memory constructors.
    /// Under [`SyncPolicy::Always`] group commit is disabled so the
    /// record boundary is the op boundary; the other policies keep the
    /// `write_budget` group-commit merge and sync (or don't) per merged
    /// group. See the README's *Durability* section for what an
    /// acked-but-unsynced op means under each policy.
    pub sync: SyncPolicy,
    /// Durable services write a compacted checkpoint after at least this
    /// many admitted write ops (`0` = never; recovery then replays the
    /// whole log). Ignored by the in-memory constructors.
    pub checkpoint_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            readers: 2,
            queue_cap: 1024,
            write_budget: 1 << 14,
            coalesce: true,
            sync: SyncPolicy::GroupCommit,
            checkpoint_every: 1 << 15,
        }
    }
}

/// One query batch, as submitted by a client.
///
/// Non-exhaustive: serving kinds are added as the query engine grows
/// (`PathFold` arrived after `PathMax`), so foreign matches need a
/// wildcard arm. Every variant stays constructible.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum QueryReq {
    /// Window connectivity (`is_connected` on the served structure).
    WindowConnected(Vec<(VertexId, VertexId)>),
    /// Path-max over the underlying MSF (`None` when disconnected or
    /// `u == v`). Equivalent to [`QueryReq::PathFold`] with
    /// [`FoldKind::Max`]; kept as its own kind for the common case.
    PathMax(Vec<(VertexId, VertexId)>),
    /// Monoid path aggregation over the window MSF
    /// (`bimst_query::QueryBatch::batch_window_path_fold`): `kind` picks
    /// the monoid, each answer folds it along the pair's window tree path
    /// (`None` when window-disconnected or `u == v`). Answers arrive as
    /// [`QueryResp::PathFold`] with the [`FoldValue`] arm matching the
    /// kind.
    PathFold {
        /// Which monoid to fold (max, min, sum, or hop count).
        kind: FoldKind,
        /// Endpoint pairs, as in [`QueryReq::PathMax`].
        pairs: Vec<(VertexId, VertexId)>,
    },
    /// Component size in the underlying MSF.
    ComponentSize(Vec<VertexId>),
    /// Window connectivity *for one logical tenant* of a multi-tenant
    /// service ([`Service::tenants`]): answered under the tenant's own
    /// window length via its recency cutoff on the shared structure (or
    /// its dedicated fallback structure). Answers arrive as
    /// [`QueryResp::WindowConnected`]. Submitting this to a service whose
    /// window serves no tenants fails stop.
    TenantConnected {
        /// The tenant the answers are scoped to.
        tenant: u32,
        /// Endpoint pairs, as in [`QueryReq::WindowConnected`].
        pairs: Vec<(VertexId, VertexId)>,
    },
}

impl QueryReq {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        match self {
            QueryReq::WindowConnected(q) | QueryReq::PathMax(q) => q.len(),
            QueryReq::ComponentSize(q) => q.len(),
            QueryReq::TenantConnected { pairs, .. } | QueryReq::PathFold { pairs, .. } => {
                pairs.len()
            }
        }
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Answers to one [`QueryReq`], in query order.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResp {
    /// See [`QueryReq::WindowConnected`].
    WindowConnected(Vec<bool>),
    /// See [`QueryReq::PathMax`].
    PathMax(Vec<Option<WKey>>),
    /// See [`QueryReq::ComponentSize`].
    ComponentSize(Vec<usize>),
    /// See [`QueryReq::PathFold`]. Every answer in a batch carries the
    /// same [`FoldValue`] arm (determined by the request's [`FoldKind`]).
    PathFold(Vec<Option<FoldValue>>),
}

impl QueryResp {
    /// Number of answers.
    pub fn len(&self) -> usize {
        match self {
            QueryResp::WindowConnected(a) => a.len(),
            QueryResp::PathMax(a) => a.len(),
            QueryResp::ComponentSize(a) => a.len(),
            QueryResp::PathFold(a) => a.len(),
        }
    }

    /// Whether the answer set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The connectivity answers, if this was a window-connectivity batch.
    pub fn into_window_connected(self) -> Option<Vec<bool>> {
        match self {
            QueryResp::WindowConnected(a) => Some(a),
            _ => None,
        }
    }

    /// The path-max answers, if this was a path-max batch.
    pub fn into_path_max(self) -> Option<Vec<Option<WKey>>> {
        match self {
            QueryResp::PathMax(a) => Some(a),
            _ => None,
        }
    }

    /// The component sizes, if this was a component-size batch.
    pub fn into_component_size(self) -> Option<Vec<usize>> {
        match self {
            QueryResp::ComponentSize(a) => Some(a),
            _ => None,
        }
    }

    /// The fold answers, if this was a path-fold batch.
    pub fn into_path_fold(self) -> Option<Vec<Option<FoldValue>>> {
        match self {
            QueryResp::PathFold(a) => Some(a),
            _ => None,
        }
    }
}

/// A resolved query: the answers plus the generation they were computed at
/// (the number of write groups applied before the batch was admitted —
/// snapshot consistency means the answers reflect exactly that state).
#[derive(Clone, Debug, PartialEq)]
pub struct Answered {
    /// Write-group generation the batch was admitted (and answered) at.
    pub generation: u64,
    /// Answers, in query order.
    pub resp: QueryResp,
}

/// The service has shut down (or its writer died); the submission was not
/// admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("bimst-service: service is shut down")
    }
}

impl std::error::Error for ServiceClosed {}

/// Why a `try_*` submission was rejected; carries the op back so the
/// caller can retry without cloning (a rejected op is **not** admitted and
/// will never be applied). `#[must_use]`: dropping the rejection silently
/// drops the op — retry it, shed it deliberately, or at least log it.
#[must_use = "a rejected op was not admitted; retry or shed it deliberately"]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrySubmitError<T> {
    /// The bounded admission queue is full — backpressure; retry later.
    Full(T),
    /// The service has shut down.
    Closed(T),
}

impl<T> TrySubmitError<T> {
    /// The rejected op.
    pub fn into_inner(self) -> T {
        match self {
            TrySubmitError::Full(t) | TrySubmitError::Closed(t) => t,
        }
    }

    /// Whether this rejection is retryable backpressure.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySubmitError::Full(_))
    }
}

impl<T> std::fmt::Display for TrySubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::Full(_) => f.write_str("bimst-service: admission queue full"),
            TrySubmitError::Closed(_) => f.write_str("bimst-service: service is shut down"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySubmitError<T> {}

/// A pending query's answer slot. Admission guarantees resolution: once
/// the submitting call returned `Ok`, [`QueryTicket::wait`] returns the
/// answers even if the service is shut down in between (drain ordering).
/// `#[must_use]`: a dropped ticket is a query whose answers nobody reads.
#[must_use = "a dropped ticket discards the query's answers; call wait() or try_wait()"]
#[derive(Debug)]
pub struct QueryTicket {
    rx: Receiver<Answered>,
}

impl QueryTicket {
    /// Blocks until the batch is answered.
    ///
    /// `Err(ServiceClosed)` is only possible if the writer thread died
    /// abnormally (panicked); orderly shutdown always answers first.
    pub fn wait(self) -> Result<Answered, ServiceClosed> {
        self.rx.recv().map_err(|_| ServiceClosed)
    }

    /// Non-blocking poll: `Ok(Some(_))` once answered, `Ok(None)` while
    /// pending, `Err(ServiceClosed)` if the writer died abnormally (so a
    /// poll loop terminates instead of spinning on a dead service).
    pub fn try_wait(&self) -> Result<Option<Answered>, ServiceClosed> {
        match self.rx.try_recv() {
            Ok(a) => Ok(Some(a)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(ServiceClosed),
        }
    }
}

/// A pending [`ServiceHandle::barrier`]: resolves with the generation once
/// every write admitted before the barrier has been applied. `#[must_use]`:
/// an unwaited barrier synchronizes nothing.
#[must_use = "a barrier only synchronizes if you wait() on it"]
#[derive(Debug)]
pub struct BarrierTicket {
    rx: Receiver<u64>,
}

impl BarrierTicket {
    /// Blocks until all prior writes are applied; returns the generation.
    pub fn wait(self) -> Result<u64, ServiceClosed> {
        self.rx.recv().map_err(|_| ServiceClosed)
    }
}

/// A clonable client endpoint: submissions from any number of threads are
/// admitted in channel (FIFO) order, which is the order the service's
/// sequential semantics are defined against.
#[derive(Clone)]
pub struct ServiceHandle {
    tx: SyncSender<Req>,
    /// `service_submitted_ops`: everything admitted through this service's
    /// handles (writes, queries, barriers, metrics requests). The writer
    /// pairs it with its own processed count to derive the queue depth.
    submitted: bimst_obs::Counter,
    /// `service_rejected_full`: non-blocking submissions bounced with
    /// [`TrySubmitError::Full`] (backpressure events, never admitted).
    rejected: bimst_obs::Counter,
}

impl ServiceHandle {
    fn new(tx: SyncSender<Req>, rec: &bimst_obs::Recorder) -> ServiceHandle {
        ServiceHandle {
            tx,
            submitted: rec.counter("service_submitted_ops"),
            rejected: rec.counter("service_rejected_full"),
        }
    }

    /// Admits an insert batch (blocking under backpressure). The edges are
    /// appended on the new side of the window, positions assigned in
    /// admission order.
    pub fn insert(&self, edges: Vec<(VertexId, VertexId)>) -> Result<(), ServiceClosed> {
        self.tx
            .send(Req::Insert(edges))
            .map_err(|_| ServiceClosed)?;
        self.submitted.inc();
        Ok(())
    }

    /// [`ServiceHandle::insert`] without blocking: under a full queue the
    /// batch is handed back via [`TrySubmitError::Full`], un-admitted.
    pub fn try_insert(
        &self,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Result<(), TrySubmitError<Vec<(VertexId, VertexId)>>> {
        match self.tx.try_send(Req::Insert(edges)) {
            Ok(()) => {
                self.submitted.inc();
                Ok(())
            }
            Err(TrySendError::Full(Req::Insert(v))) => {
                self.rejected.inc();
                Err(TrySubmitError::Full(v))
            }
            Err(TrySendError::Disconnected(Req::Insert(v))) => Err(TrySubmitError::Closed(v)),
            Err(_) => unreachable!("try_insert sent Req::Insert"),
        }
    }

    /// Admits an expiration of the `delta` oldest stream positions
    /// (blocking under backpressure).
    pub fn expire(&self, delta: u64) -> Result<(), ServiceClosed> {
        self.tx
            .send(Req::Expire(delta))
            .map_err(|_| ServiceClosed)?;
        self.submitted.inc();
        Ok(())
    }

    /// [`ServiceHandle::expire`] without blocking.
    pub fn try_expire(&self, delta: u64) -> Result<(), TrySubmitError<u64>> {
        match self.tx.try_send(Req::Expire(delta)) {
            Ok(()) => {
                self.submitted.inc();
                Ok(())
            }
            Err(TrySendError::Full(Req::Expire(d))) => {
                self.rejected.inc();
                Err(TrySubmitError::Full(d))
            }
            Err(TrySendError::Disconnected(Req::Expire(d))) => Err(TrySubmitError::Closed(d)),
            Err(_) => unreachable!("try_expire sent Req::Expire"),
        }
    }

    /// Admits a query batch (blocking under backpressure); the ticket
    /// resolves with answers computed at the admission generation.
    pub fn query(&self, req: QueryReq) -> Result<QueryTicket, ServiceClosed> {
        let (resp, rx) = mpsc::channel();
        let at = bimst_obs::enabled().then(std::time::Instant::now);
        self.tx
            .send(Req::Query { req, resp, at })
            .map_err(|_| ServiceClosed)?;
        self.submitted.inc();
        Ok(QueryTicket { rx })
    }

    /// [`ServiceHandle::query`] without blocking.
    pub fn try_query(&self, req: QueryReq) -> Result<QueryTicket, TrySubmitError<QueryReq>> {
        let (resp, rx) = mpsc::channel();
        let at = bimst_obs::enabled().then(std::time::Instant::now);
        match self.tx.try_send(Req::Query { req, resp, at }) {
            Ok(()) => {
                self.submitted.inc();
                Ok(QueryTicket { rx })
            }
            Err(TrySendError::Full(Req::Query { req, .. })) => {
                self.rejected.inc();
                Err(TrySubmitError::Full(req))
            }
            Err(TrySendError::Disconnected(Req::Query { req, .. })) => {
                Err(TrySubmitError::Closed(req))
            }
            Err(_) => unreachable!("try_query sent Req::Query"),
        }
    }

    /// Admits a tenant-scoped connectivity batch
    /// ([`QueryReq::TenantConnected`]) against a multi-tenant service.
    pub fn query_tenant(
        &self,
        tenant: u32,
        pairs: Vec<(VertexId, VertexId)>,
    ) -> Result<QueryTicket, ServiceClosed> {
        self.query(QueryReq::TenantConnected { tenant, pairs })
    }

    /// Admits a monoid path-aggregation batch ([`QueryReq::PathFold`]):
    /// `kind` picks the fold, answers arrive as [`QueryResp::PathFold`].
    pub fn query_fold(
        &self,
        kind: FoldKind,
        pairs: Vec<(VertexId, VertexId)>,
    ) -> Result<QueryTicket, ServiceClosed> {
        self.query(QueryReq::PathFold { kind, pairs })
    }

    /// Admits a write barrier: its ticket resolves (with the generation)
    /// once every write admitted before it has been applied.
    pub fn barrier(&self) -> Result<BarrierTicket, ServiceClosed> {
        let (resp, rx) = mpsc::channel();
        self.tx
            .send(Req::Barrier(resp))
            .map_err(|_| ServiceClosed)?;
        self.submitted.inc();
        Ok(BarrierTicket { rx })
    }

    /// A generation-consistent metrics snapshot: the request rides the
    /// admission queue, so the writer answers it after everything admitted
    /// before it (FIFO) and the snapshot's counters cover exactly that
    /// prefix. Folds the service's own registry with the window
    /// structure's (tenant routing) and the process-global one (engine
    /// rounds, query plans — aggregated across *all* services in the
    /// process). Blocks under backpressure like any other submission.
    ///
    /// Export with [`bimst_obs::Snapshot::to_json`] or
    /// [`bimst_obs::Snapshot::to_prometheus`]. With the `obs` feature off
    /// the snapshot is empty.
    pub fn metrics_snapshot(&self) -> Result<bimst_obs::Snapshot, ServiceClosed> {
        let (resp, rx) = mpsc::channel();
        self.tx
            .send(Req::Metrics(resp))
            .map_err(|_| ServiceClosed)?;
        self.submitted.inc();
        rx.recv().map_err(|_| ServiceClosed)
    }

    /// Adapter from a `bimst_graphgen` mixed-workload op
    /// ([`bimst_graphgen::MixedStream`] is an iterator of these): writes
    /// are admitted fire-and-forget, query ops return a ticket.
    ///
    /// # Panics
    ///
    /// On an op variant this build has no serving path for (`Op` is
    /// non-exhaustive): silently dropping an op would skew any workload
    /// driven through this adapter, so it fails stop instead.
    pub fn submit_op(&self, op: Op) -> Result<Option<QueryTicket>, ServiceClosed> {
        match op {
            Op::Insert(edges) => self.insert(edges).map(|()| None),
            Op::Expire(delta) => self.expire(delta).map(|()| None),
            Op::ConnectedQueries(qs) => self.query(QueryReq::WindowConnected(qs)).map(Some),
            Op::PathMaxQueries(qs) => self.query(QueryReq::PathMax(qs)).map(Some),
            Op::ComponentSizeQueries(vs) => self.query(QueryReq::ComponentSize(vs)).map(Some),
            Op::TenantConnectedQueries(tenant, qs) => self
                .query(QueryReq::TenantConnected { tenant, pairs: qs })
                .map(Some),
            Op::PathFoldQueries(kind, qs) => {
                self.query(QueryReq::PathFold { kind, pairs: qs }).map(Some)
            }
            op => panic!("bimst-service: no serving path for op variant {op:?}"),
        }
    }
}

/// A running serving instance. Derefs to [`ServiceHandle`] for submissions
/// from the owning thread; [`Service::handle`] clones an endpoint for
/// other client threads.
pub struct Service {
    handle: ServiceHandle,
    writer: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts a service around an existing window structure (in-memory:
    /// no WAL; `cfg.sync` / `cfg.checkpoint_every` are ignored).
    pub fn start<W: ServeWindow>(w: W, cfg: ServiceConfig) -> Service {
        Service::spawn(w, cfg, 0, None, bimst_obs::Recorder::new())
    }

    fn spawn<W: ServeWindow>(
        w: W,
        cfg: ServiceConfig,
        generation: u64,
        dur: Option<DurCtl<W>>,
        rec: bimst_obs::Recorder,
    ) -> Service {
        let (tx, rx) = mpsc::sync_channel(cfg.queue_cap.max(1));
        // Handle counters register on the same per-service recorder the
        // writer snapshots, so submitted/rejected show up in
        // `metrics_snapshot()` without any cross-thread plumbing.
        let handle = ServiceHandle::new(tx, &rec);
        let writer = std::thread::Builder::new()
            .name("bimst-serve-writer".into())
            .spawn(move || shard::writer_main(w, cfg, rx, generation, dur, rec))
            .expect("spawn bimst-service writer thread");
        Service {
            handle,
            writer: Some(writer),
        }
    }

    /// A service over a fresh eager-expiry window ([`SwConnEager`]):
    /// expired edges are cut, component counting works, `PathMax` /
    /// `ComponentSize` reflect exactly the window's MSF.
    pub fn eager(n: usize, seed: u64, cfg: ServiceConfig) -> Service {
        Service::start(SwConnEager::new(n, seed), cfg)
    }

    /// A service over a fresh lazy-expiry window ([`SwConn`]): `O(1)`
    /// expiry; `WindowConnected` applies the recent-edge test, while
    /// `PathMax` / `ComponentSize` answer over the retained MSF (which
    /// still contains expired edges).
    pub fn lazy(n: usize, seed: u64, cfg: ServiceConfig) -> Service {
        Service::start(SwConn::new(n, seed), cfg)
    }

    /// A service over a fresh multi-tenant window set ([`TenantSet`]): N
    /// logical windows over one stream, served by a single shared lazy
    /// structure sized to the longest window. A tenant's
    /// [`QueryReq::TenantConnected`] batch is answered under its own
    /// window length via a per-tenant recency cutoff (Lemma 5.1 applied
    /// per tenant); tenants with windows below
    /// `tcfg.dedicated_fraction × ℓ_max` get dedicated fallback
    /// structures fed from the same admission log. Mixed-tenant batches
    /// admitted in the same generation share one deduped query plan.
    ///
    /// In-memory only: the WAL codec carries the tenant op tag, but
    /// durable recovery of a tenant registry is future work, and this
    /// constructor takes no store path so nothing about it *looks*
    /// durable. `cfg.sync` / `cfg.checkpoint_every` are ignored exactly
    /// as by [`Service::start`]. A caller that needs the durable
    /// combination must go through [`Service::tenants_durable`], which
    /// fails loudly instead of silently skipping the log.
    pub fn tenants(
        n: usize,
        seed: u64,
        specs: &[TenantSpec],
        tcfg: TenantConfig,
        cfg: ServiceConfig,
    ) -> Service {
        Service::start(TenantSet::new(n, seed, specs, tcfg), cfg)
    }

    /// The durable counterpart [`Service::tenants`] deliberately does not
    /// have: durable recovery of a tenant registry (per-tenant cutoffs,
    /// dedicated fallback structures) is **not implemented**, and before
    /// this constructor existed a caller could hand a durable-looking
    /// `ServiceConfig` to [`Service::tenants`] and believe its ops were
    /// logged. This always returns [`io::ErrorKind::Unsupported`] — the
    /// WAL layer refuses to create (or ever open) a tenant-tagged store,
    /// so the combination cannot silently lose durability. No file is
    /// created.
    pub fn tenants_durable(
        path: impl AsRef<Path>,
        n: usize,
        seed: u64,
        specs: &[TenantSpec],
        tcfg: TenantConfig,
        cfg: ServiceConfig,
    ) -> io::Result<Service> {
        let _ = (specs, tcfg, cfg);
        let meta = bimst_wal::Meta {
            n: n as u64,
            seed,
            eager: false,
            tenants: true,
        };
        match bimst_wal::Store::create(path, &meta) {
            Err(e) => Err(e),
            // Unreachable today; if the WAL ever learns to log a tenant
            // registry this constructor must grow a real serving path
            // rather than quietly dropping the store.
            Ok(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "bimst-service: durable tenant serving is not implemented",
            )),
        }
    }

    /// [`Service::eager`] with durability: admitted write ops are logged
    /// to a fresh WAL store at `path` (created; must not already hold
    /// one) *before* they are applied, under `cfg.sync`, with compacted
    /// checkpoints every `cfg.checkpoint_every` ops. After a crash or
    /// shutdown, [`Service::recover`] resumes from `path`.
    pub fn eager_durable(
        path: impl AsRef<Path>,
        n: usize,
        seed: u64,
        cfg: ServiceConfig,
    ) -> io::Result<Service> {
        let meta = bimst_wal::Meta {
            n: n as u64,
            seed,
            eager: true,
            tenants: false,
        };
        let store = bimst_wal::Store::create(path, &meta)?;
        Ok(Service::start_durable(
            SwConnEager::new(n, seed),
            store,
            0,
            cfg,
        ))
    }

    /// [`Service::lazy`] with durability; see [`Service::eager_durable`].
    pub fn lazy_durable(
        path: impl AsRef<Path>,
        n: usize,
        seed: u64,
        cfg: ServiceConfig,
    ) -> io::Result<Service> {
        let meta = bimst_wal::Meta {
            n: n as u64,
            seed,
            eager: false,
            tenants: false,
        };
        let store = bimst_wal::Store::create(path, &meta)?;
        Ok(Service::start_durable(SwConn::new(n, seed), store, 0, cfg))
    }

    /// Reopens the WAL store at `path`, rebuilds the window it describes
    /// (newest valid checkpoint + replay of the intact log tail — a torn
    /// final record is discarded, never misparsed), and resumes serving
    /// at the recovered generation. The store remembers its own identity
    /// (`n`, seed, expiry discipline), so only the serving shape is
    /// taken from `cfg`.
    ///
    /// Answers after recovery are bit-identical to a service that had
    /// applied the surviving admitted-op prefix without interruption
    /// (pinned by `tests/wal_recovery.rs` and the torture suite in
    /// `crates/wal/tests/`).
    pub fn recover(path: impl AsRef<Path>, cfg: ServiceConfig) -> io::Result<Service> {
        let (store, meta, rec) = bimst_wal::Store::open(path)?;
        Ok(Service::resume(store, meta, rec, cfg))
    }

    /// [`Service::recover`], but the caller states the identity it
    /// expects the store to have: `n`, `seed`, and the expiry discipline
    /// must match the stored meta exactly, otherwise recovery fails with
    /// [`io::ErrorKind::InvalidInput`] naming every disagreeing field —
    /// before any file is touched — instead of trusting the store and
    /// silently rebuilding a structure the caller's config does not
    /// describe (e.g. a recover pointed at the wrong directory).
    pub fn recover_expecting(
        path: impl AsRef<Path>,
        n: usize,
        seed: u64,
        eager: bool,
        cfg: ServiceConfig,
    ) -> io::Result<Service> {
        let expect = bimst_wal::Meta {
            n: n as u64,
            seed,
            eager,
            tenants: false,
        };
        let (store, meta, rec) = bimst_wal::Store::open_expecting(path, &expect)?;
        Ok(Service::resume(store, meta, rec, cfg))
    }

    fn resume(
        store: bimst_wal::Store,
        meta: bimst_wal::Meta,
        rec: bimst_wal::Recovery,
        cfg: ServiceConfig,
    ) -> Service {
        let n = meta.n as usize;
        if meta.eager {
            let mut w = SwConnEager::new(n, meta.seed);
            Service::rebuild(&mut w, &rec);
            Service::start_durable(w, store, rec.generation, cfg)
        } else {
            let mut w = SwConn::new(n, meta.seed);
            Service::rebuild(&mut w, &rec);
            Service::start_durable(w, store, rec.generation, cfg)
        }
    }

    fn rebuild<W: ServeWindow + WindowCheckpoint>(w: &mut W, rec: &bimst_wal::Recovery) {
        if let Some(ck) = &rec.checkpoint {
            w.restore(&ck.edges, ck.tw, ck.t);
        }
        for op in &rec.tail {
            match op {
                Op::Insert(edges) => {
                    w.batch_insert(edges);
                }
                Op::Expire(delta) => w.batch_expire(*delta),
                // The service only logs writes; skip anything else a
                // foreign writer may have appended.
                _ => {}
            }
        }
    }

    fn start_durable<W: ServeWindow + WindowCheckpoint>(
        w: W,
        mut store: bimst_wal::Store,
        generation: u64,
        cfg: ServiceConfig,
    ) -> Service {
        let rec = bimst_obs::Recorder::new();
        // WAL metrics (`wal_*`) land on the service recorder: the store is
        // owned by this writer, so they are per-service too.
        store.attach_obs(&rec);
        Service::spawn(
            w,
            cfg,
            generation,
            Some(DurCtl::new(
                store,
                cfg.sync,
                cfg.checkpoint_every,
                |w: &W| {
                    let (tw, t) = w.window();
                    (tw, t, w.compact_edges())
                },
            )),
            rec,
        )
    }

    /// A client endpoint for another thread.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stops admission from this `Service` and blocks until the writer has
    /// drained: every admitted write applied, every admitted query
    /// answered, readers retired — in that order. If other
    /// [`ServiceHandle`] clones are still alive, the writer keeps serving
    /// them and `shutdown` blocks until they are dropped too (admission
    /// guarantees survive shutdown races; nothing acked is ever lost).
    ///
    /// Dropping a `Service` without calling `shutdown` also drains, but
    /// detached — the writer finishes in the background.
    pub fn shutdown(mut self) {
        let writer = self.writer.take();
        drop(self); // closes this end of the admission queue
        if let Some(writer) = writer {
            let _ = writer.join();
        }
    }
}

impl std::ops::Deref for Service {
    type Target = ServiceHandle;

    fn deref(&self) -> &ServiceHandle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(readers: usize) -> ServiceConfig {
        ServiceConfig {
            readers,
            queue_cap: 64,
            write_budget: 1 << 12,
            coalesce: true,
            ..ServiceConfig::default()
        }
    }

    /// Answers must match a sequentially driven structure, for both expiry
    /// disciplines and several reader counts.
    #[test]
    fn serves_like_the_sequential_structure() {
        for readers in [1, 3] {
            let svc = Service::eager(10, 5, cfg(readers));
            let mut seq = SwConnEager::new(10, 5);

            svc.insert(vec![(0, 1), (1, 2), (3, 4)]).unwrap();
            seq.batch_insert(&[(0, 1), (1, 2), (3, 4)]);
            let t1 = svc
                .query(QueryReq::WindowConnected(vec![(0, 2), (0, 3), (3, 4)]))
                .unwrap();

            svc.expire(1).unwrap();
            seq.batch_expire(1);
            let t2 = svc.query(QueryReq::ComponentSize(vec![0, 1, 3])).unwrap();
            let t3 = svc.query(QueryReq::PathMax(vec![(1, 2), (0, 2)])).unwrap();

            let a1 = t1.wait().unwrap();
            assert_eq!(a1.generation, 1);
            assert_eq!(
                a1.resp.into_window_connected().unwrap(),
                vec![true, false, true]
            );

            let a2 = t2.wait().unwrap();
            assert_eq!(a2.generation, 2);
            assert_eq!(
                a2.resp.into_component_size().unwrap(),
                vec![
                    seq.msf().component_size(0),
                    seq.msf().component_size(1),
                    seq.msf().component_size(3)
                ]
            );

            let a3 = t3.wait().unwrap();
            assert_eq!(
                a3.resp.into_path_max().unwrap(),
                vec![seq.msf().path_max(1, 2), seq.msf().path_max(0, 2)]
            );
            svc.shutdown();
        }
    }

    #[test]
    fn lazy_window_applies_recent_edge_test() {
        let svc = Service::lazy(6, 9, cfg(2));
        let mut seq = SwConn::new(6, 9);
        svc.insert(vec![(0, 1), (1, 2)]).unwrap();
        seq.batch_insert(&[(0, 1), (1, 2)]);
        svc.expire(1).unwrap();
        seq.batch_expire(1);
        let got = svc
            .query(QueryReq::WindowConnected(vec![(0, 1), (1, 2), (0, 2)]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            got.resp.into_window_connected().unwrap(),
            vec![
                seq.is_connected(0, 1),
                seq.is_connected(1, 2),
                seq.is_connected(0, 2)
            ]
        );
        svc.shutdown();
    }

    #[test]
    fn barrier_reports_generation_after_prior_writes() {
        let svc = Service::eager(5, 1, cfg(1));
        assert_eq!(svc.barrier().unwrap().wait().unwrap(), 0);
        svc.insert(vec![(0, 1)]).unwrap();
        svc.expire(1).unwrap();
        // Two write ops admitted before this barrier: the generation it
        // reports must cover both (group commit may merge neither here —
        // they are different kinds — so exactly 2).
        assert_eq!(svc.barrier().unwrap().wait().unwrap(), 2);
        svc.shutdown();
    }

    #[test]
    fn shutdown_answers_all_admitted_queries() {
        let svc = Service::eager(50, 3, cfg(2));
        svc.insert((0..49).map(|v| (v, v + 1)).collect()).unwrap();
        let tickets: Vec<QueryTicket> = (0..40)
            .map(|i| {
                svc.query(QueryReq::WindowConnected(vec![(i % 50, (i + 1) % 50)]))
                    .unwrap()
            })
            .collect();
        svc.shutdown(); // every admitted ticket must still resolve
        for t in tickets {
            let a = t.wait().expect("drain-on-shutdown answers every query");
            assert_eq!(a.resp.len(), 1);
        }
    }

    /// Shutdown blocks until every handle clone is dropped (that is what
    /// makes "admitted ⇒ processed" exact), so the orderly path is
    /// drop-then-shutdown.
    #[test]
    fn shutdown_completes_once_handles_are_dropped() {
        let svc = Service::eager(4, 2, cfg(1));
        let h = svc.handle();
        h.insert(vec![(0, 1)]).unwrap();
        drop(h);
        svc.shutdown();
    }

    /// Submissions against a dead writer (its receiver gone) map onto the
    /// closed errors instead of panicking or hanging.
    #[test]
    fn submitting_to_a_dead_writer_fails_cleanly() {
        let (tx, rx) = mpsc::sync_channel(4);
        drop(rx);
        let h = ServiceHandle::new(tx, &bimst_obs::Recorder::new());
        assert_eq!(h.insert(vec![(0, 1)]), Err(ServiceClosed));
        assert!(h.metrics_snapshot().is_err());
        assert!(matches!(h.try_expire(1), Err(TrySubmitError::Closed(1))));
        assert!(matches!(
            h.try_insert(vec![(2, 3)]),
            Err(TrySubmitError::Closed(v)) if v == vec![(2, 3)]
        ));
        assert!(h.query(QueryReq::ComponentSize(vec![0])).is_err());
        assert!(h.barrier().is_err());
        assert_eq!(
            h.try_query(QueryReq::PathMax(vec![])).unwrap_err(),
            TrySubmitError::Closed(QueryReq::PathMax(vec![]))
        );
    }

    /// A malformed batch (out-of-range vertex id) must fail stop — ticket
    /// errors, service dead — never strand the writer at its join barrier.
    #[test]
    fn malformed_query_fails_stop_instead_of_hanging() {
        let svc = Service::eager(4, 2, cfg(2));
        svc.insert(vec![(0, 1)]).unwrap();
        let t = svc.query(QueryReq::ComponentSize(vec![900])).unwrap();
        assert!(t.wait().is_err(), "poisoned serve must resolve as closed");
        svc.shutdown();
    }

    #[test]
    fn empty_batches_are_fine() {
        let svc = Service::eager(4, 2, cfg(2));
        svc.insert(vec![]).unwrap();
        let a = svc
            .query(QueryReq::PathMax(vec![]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(a.resp.is_empty());
        svc.shutdown();
    }

    /// Monoid fold batches served end to end must match the engine folds
    /// on a sequentially driven twin — every wire kind, both expiry
    /// disciplines, and a run mixing kinds in one generation (so the
    /// merged plan's same-kind span dispatch and the split-back cursor
    /// are both exercised).
    #[test]
    fn path_fold_serves_every_kind_like_the_engine() {
        use bimst_primitives::{Hops, MinW, SumW};
        let edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3), (5, 6), (6, 7)];
        let pairs: Vec<(u32, u32)> = vec![(0, 3), (1, 3), (5, 7), (0, 5), (2, 2)];
        for lazy in [false, true] {
            let svc = if lazy {
                Service::lazy(10, 3, cfg(2))
            } else {
                Service::eager(10, 3, cfg(2))
            };
            let mut seq = SwConnEager::new(10, 3);
            svc.insert(edges.clone()).unwrap();
            seq.batch_insert(&edges);
            svc.expire(1).unwrap();
            seq.batch_expire(1);
            // One batch per kind, admitted back to back so coalescing can
            // merge them into one multi-kind plan.
            let tickets: Vec<QueryTicket> = FoldKind::ALL
                .iter()
                .map(|&k| svc.query_fold(k, pairs.clone()).unwrap())
                .collect();
            let answers: Vec<Vec<Option<FoldValue>>> = tickets
                .into_iter()
                .map(|t| t.wait().unwrap().resp.into_path_fold().unwrap())
                .collect();
            // Oracle: fold each pair on the eager twin's window MSF. The
            // lazy window retains the same unexpired paths here (the
            // expired edge (0,1) disconnects 0 from 3 either way via the
            // heaviest-edge test), so presence must agree with the eager
            // window's connectivity.
            for (ki, &kind) in FoldKind::ALL.iter().enumerate() {
                for (qi, &(u, v)) in pairs.iter().enumerate() {
                    let want = match kind {
                        FoldKind::Max => seq
                            .msf()
                            .path_fold::<bimst_primitives::MaxW>(u, v)
                            .map(FoldValue::Key),
                        FoldKind::Min => seq.msf().path_fold::<MinW>(u, v).map(FoldValue::Key),
                        FoldKind::Sum => seq.msf().path_fold::<SumW>(u, v).map(FoldValue::Sum),
                        FoldKind::Hops => seq.msf().path_fold::<Hops>(u, v).map(FoldValue::Hops),
                    };
                    assert_eq!(
                        answers[ki][qi], want,
                        "kind {kind:?} pair ({u},{v}) lazy={lazy}"
                    );
                }
            }
            svc.shutdown();
        }
    }

    /// Fold-tagged `MixedStream` ops drive the service end to end through
    /// `submit_op`, and every fold answer carries the arm its kind
    /// promises.
    #[test]
    fn fold_tagged_mixed_stream_drives_the_service() {
        use bimst_graphgen::{MixedConfig, MixedStream};
        let cfg_stream = MixedConfig {
            query_batch: 6,
            ..MixedConfig::serving(64)
        };
        let svc = Service::eager(64, 7, cfg(2));
        let mut tickets = Vec::new();
        for op in MixedStream::with_folds(cfg_stream, 11).take(60) {
            let kind = match &op {
                Op::PathFoldQueries(k, _) => Some(*k),
                _ => None,
            };
            if let Some(t) = svc.submit_op(op).unwrap() {
                tickets.push((kind, t));
            }
        }
        svc.shutdown();
        let mut folds = 0;
        for (kind, t) in tickets {
            let resp = t.wait().unwrap().resp;
            let Some(kind) = kind else { continue };
            folds += 1;
            for a in resp.into_path_fold().unwrap().into_iter().flatten() {
                let arm_matches = matches!(
                    (kind, a),
                    (FoldKind::Max | FoldKind::Min, FoldValue::Key(_))
                        | (FoldKind::Sum, FoldValue::Sum(_))
                        | (FoldKind::Hops, FoldValue::Hops(_))
                );
                assert!(arm_matches, "kind {kind:?} answered with {a:?}");
            }
        }
        assert!(folds > 0, "stream with folds on must emit fold batches");
    }

    #[test]
    fn mixed_stream_ops_drive_the_service() {
        use bimst_graphgen::{MixedConfig, MixedStream, MixedTopology};
        let cfg_stream = MixedConfig {
            n: 64,
            topology: MixedTopology::ErdosRenyi,
            insert_batch: 16,
            query_batch: 8,
            queries_per_insert: 3,
            window: 64,
            tenants: 0,
        };
        let svc = Service::eager(64, 7, cfg(2));
        let mut tickets = Vec::new();
        for op in MixedStream::new(cfg_stream, 11).take(25) {
            if let Some(t) = svc.submit_op(op).unwrap() {
                tickets.push(t);
            }
        }
        svc.shutdown();
        for t in tickets {
            assert_eq!(t.wait().unwrap().resp.len(), 8);
        }
    }

    /// A multi-tenant service's answers must match the sequentially driven
    /// `TenantSet`, across shared-routed and dedicated-routed tenants and
    /// mixed-tenant batches admitted in the same generation.
    #[test]
    fn tenant_service_matches_sequential_tenant_set() {
        let specs = [
            TenantSpec { id: 0, window: 64 },
            TenantSpec { id: 1, window: 8 },
            TenantSpec { id: 2, window: 2 }, // dedicated under fraction 1/8
        ];
        let tcfg = TenantConfig {
            dedicated_fraction: 1.0 / 8.0,
        };
        for readers in [1, 3] {
            let svc = Service::tenants(32, 7, &specs, tcfg, cfg(readers));
            let mut seq = bimst_sliding::TenantSet::new(32, 7, &specs, tcfg);
            let mut x = 11u64;
            let mut hash2 = |m: u64| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % m) as u32
            };
            for round in 0..10 {
                let edges: Vec<(u32, u32)> = (0..5).map(|_| (hash2(32), hash2(32))).collect();
                svc.insert(edges.clone()).unwrap();
                seq.batch_insert(&edges);
                if round % 3 == 2 {
                    svc.expire(4).unwrap();
                    seq.batch_expire(4);
                }
                // One batch per tenant, all admitted in the same
                // generation, so they coalesce into one shared plan plus
                // the dedicated tenant's own plan.
                let pairs: Vec<(u32, u32)> = (0..6).map(|_| (hash2(32), hash2(32))).collect();
                let tickets: Vec<(u32, QueryTicket)> = specs
                    .iter()
                    .map(|s| (s.id, svc.query_tenant(s.id, pairs.clone()).unwrap()))
                    .collect();
                for (id, t) in tickets {
                    let got = t.wait().unwrap().resp.into_window_connected().unwrap();
                    let want: Vec<bool> = pairs
                        .iter()
                        .map(|&(u, v)| seq.is_connected(id, u, v))
                        .collect();
                    assert_eq!(got, want, "tenant {id} round {round}");
                }
            }
            svc.shutdown();
        }
    }

    /// A tenant query against a single-window service has no route — it
    /// must fail stop (ticket errors, service dead), not silently answer
    /// from the wrong window.
    #[test]
    fn tenant_query_on_single_window_service_fails_stop() {
        let svc = Service::eager(8, 3, cfg(1));
        svc.insert(vec![(0, 1)]).unwrap();
        let t = svc.query_tenant(0, vec![(0, 1)]).unwrap();
        assert!(t.wait().is_err(), "routeless tenant query must fail stop");
    }

    /// Tenant-tagged `MixedStream` ops drive a multi-tenant service end to
    /// end through `submit_op`.
    #[test]
    fn tenant_tagged_mixed_stream_drives_the_service() {
        use bimst_graphgen::{MixedConfig, MixedStream};
        let cfg_stream = MixedConfig {
            tenants: 2,
            ..MixedConfig::serving(64)
        };
        let specs = [
            TenantSpec { id: 0, window: 64 },
            TenantSpec { id: 1, window: 4 },
        ];
        let svc = Service::tenants(
            64,
            7,
            &specs,
            TenantConfig {
                dedicated_fraction: 1.0 / 8.0,
            },
            cfg(2),
        );
        let mut tickets = Vec::new();
        for op in MixedStream::new(cfg_stream, 11).take(30) {
            if let Some(t) = svc.submit_op(op).unwrap() {
                tickets.push(t);
            }
        }
        svc.shutdown();
        assert!(!tickets.is_empty());
        // Every connectivity batch in the stream is tenant-tagged
        // (tenants > 0), so at least one ticket exercised the tenant path.
        let mut tenant_answers = 0;
        for t in tickets {
            if t.wait().unwrap().resp.into_window_connected().is_some() {
                tenant_answers += 1;
            }
        }
        assert!(tenant_answers > 0);
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "bimst_service_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ))
    }

    /// Orderly shutdown → recover resumes at the same generation and the
    /// recovered window answers like a sequentially driven twin, for both
    /// expiry disciplines and every sync policy.
    #[test]
    fn durable_shutdown_then_recover_round_trips() {
        for sync in [
            SyncPolicy::Always,
            SyncPolicy::GroupCommit,
            SyncPolicy::None,
        ] {
            for eager in [true, false] {
                let dir = tmpdir("round_trip");
                let c = ServiceConfig {
                    sync,
                    checkpoint_every: 3,
                    ..cfg(2)
                };
                let svc = if eager {
                    Service::eager_durable(&dir, 16, 5, c).unwrap()
                } else {
                    Service::lazy_durable(&dir, 16, 5, c).unwrap()
                };
                let mut seq = SwConnEager::new(16, 5);
                let script: [&[(u32, u32)]; 4] =
                    [&[(0, 1), (1, 2)], &[(3, 4)], &[(2, 3), (8, 9)], &[(9, 10)]];
                for edges in script {
                    svc.insert(edges.to_vec()).unwrap();
                    seq.batch_insert(edges);
                }
                svc.expire(2).unwrap();
                seq.batch_expire(2);
                let live_gen = svc.barrier().unwrap().wait().unwrap();
                svc.shutdown();

                let svc = Service::recover(&dir, c).unwrap();
                assert_eq!(svc.barrier().unwrap().wait().unwrap(), live_gen);
                let qs: Vec<(u32, u32)> = vec![(0, 2), (2, 4), (8, 10), (0, 10)];
                let got = svc
                    .query(QueryReq::WindowConnected(qs.clone()))
                    .unwrap()
                    .wait()
                    .unwrap()
                    .resp
                    .into_window_connected()
                    .unwrap();
                let want: Vec<bool> = qs.iter().map(|&(u, v)| seq.is_connected(u, v)).collect();
                assert_eq!(got, want, "sync={sync:?} eager={eager}");
                svc.shutdown();
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    /// A recovered service keeps logging: ops after recovery survive a
    /// second recovery, and the generation keeps counting from where the
    /// first incarnation stopped (no restart at zero, no gap).
    #[test]
    fn recovery_chains_across_incarnations() {
        let dir = tmpdir("chain");
        let c = ServiceConfig {
            checkpoint_every: 2,
            ..cfg(1)
        };
        let svc = Service::eager_durable(&dir, 8, 1, c).unwrap();
        svc.insert(vec![(0, 1)]).unwrap();
        svc.insert(vec![(1, 2)]).unwrap();
        assert!(svc.barrier().unwrap().wait().unwrap() >= 1);
        svc.shutdown();

        let svc = Service::recover(&dir, c).unwrap();
        let g1 = svc.barrier().unwrap().wait().unwrap();
        svc.insert(vec![(2, 3)]).unwrap();
        svc.expire(1).unwrap();
        let g2 = svc.barrier().unwrap().wait().unwrap();
        assert_eq!(g2, g1 + 2, "second incarnation continues the count");
        svc.shutdown();

        let svc = Service::recover(&dir, c).unwrap();
        assert_eq!(svc.barrier().unwrap().wait().unwrap(), g2);
        let a = svc
            .query(QueryReq::WindowConnected(vec![(1, 3), (0, 1)]))
            .unwrap()
            .wait()
            .unwrap();
        let mut seq = SwConnEager::new(8, 1);
        seq.batch_insert(&[(0, 1)]);
        seq.batch_insert(&[(1, 2)]);
        seq.batch_insert(&[(2, 3)]);
        seq.batch_expire(1);
        assert_eq!(
            a.resp.into_window_connected().unwrap(),
            vec![seq.is_connected(1, 3), seq.is_connected(0, 1)]
        );
        svc.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Under `Always` the writer must not merge: every admitted write op
    /// is its own WAL record, so the recovered generation equals the op
    /// count even with a backlog that group commit would have collapsed.
    #[test]
    fn always_policy_is_per_op() {
        let dir = tmpdir("always");
        let c = ServiceConfig {
            sync: SyncPolicy::Always,
            checkpoint_every: 0, // never: exercise the pure-tail path
            ..cfg(1)
        };
        let svc = Service::eager_durable(&dir, 8, 2, c).unwrap();
        for i in 0..6u32 {
            svc.insert(vec![(i % 7, i % 7 + 1)]).unwrap();
        }
        assert_eq!(svc.barrier().unwrap().wait().unwrap(), 6);
        svc.shutdown();
        let (_, _, rec) = bimst_wal::Store::open(&dir).unwrap();
        assert_eq!(rec.generation, 6);
        assert_eq!(rec.tail.len(), 6, "one record per op under Always");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `eager_durable` refuses a directory that already holds a store —
    /// clobbering an existing log would silently destroy its history.
    #[test]
    fn durable_create_refuses_existing_store() {
        let dir = tmpdir("refuse");
        let svc = Service::eager_durable(&dir, 4, 0, cfg(1)).unwrap();
        svc.shutdown();
        assert!(Service::eager_durable(&dir, 4, 0, cfg(1)).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
