//! Random link/cut/path-max scripts against a naive forest — the link-cut
//! tree is the benchmark baseline, so its correctness underwrites every
//! baseline comparison in `EXPERIMENTS.md`.

use bimst_linkcut::LinkCutForest;
use bimst_primitives::WKey;
use proptest::prelude::*;
use std::collections::HashMap;

/// Naive forest with DFS path-max.
struct Naive {
    n: usize,
    edges: HashMap<u64, (u32, u32, WKey)>,
}

impl Naive {
    fn new(n: usize) -> Self {
        Naive {
            n,
            edges: HashMap::new(),
        }
    }

    fn adj(&self) -> Vec<Vec<(u32, WKey)>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v, k) in self.edges.values() {
            adj[u as usize].push((v, k));
            adj[v as usize].push((u, k));
        }
        adj
    }

    fn path_max(&self, s: u32, t: u32) -> Option<WKey> {
        if s == t {
            return None;
        }
        let adj = self.adj();
        let mut best: Vec<Option<WKey>> = vec![None; self.n];
        let mut seen = vec![false; self.n];
        let mut stack = vec![s];
        seen[s as usize] = true;
        while let Some(x) = stack.pop() {
            for &(y, k) in &adj[x as usize] {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    best[y as usize] = Some(match best[x as usize] {
                        Some(b) => b.max(k),
                        None => k,
                    });
                    stack.push(y);
                }
            }
        }
        best[t as usize].filter(|_| seen[t as usize])
    }

    fn connected(&self, s: u32, t: u32) -> bool {
        s == t || self.path_max(s, t).is_some()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lct_matches_naive(
        script in proptest::collection::vec(
            (0u32..20, 0u32..20, 0u32..1000, any::<bool>()),
            1..80,
        )
    ) {
        let n = 20usize;
        let mut lct = LinkCutForest::new(n);
        let mut naive = Naive::new(n);
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for (a, b, w, cut) in script {
            if cut && !live.is_empty() {
                let id = live.swap_remove((w as usize) % live.len());
                lct.cut_edge(id);
                naive.edges.remove(&id);
            } else if a != b && !naive.connected(a, b) {
                let key = WKey::new(w as f64, next);
                lct.link(a, b, next, key);
                naive.edges.insert(next, (a, b, key));
                live.push(next);
                next += 1;
            }
            // Spot-check queries after every op.
            for s in 0..n as u32 {
                let t = (s * 7 + 3) % n as u32;
                prop_assert_eq!(lct.connected(s, t), naive.connected(s, t), "conn ({}, {})", s, t);
                prop_assert_eq!(lct.path_max(s, t), naive.path_max(s, t), "pmax ({}, {})", s, t);
            }
        }
    }
}
