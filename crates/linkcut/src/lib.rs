//! Link-cut trees (Sleator–Tarjan) with path-max aggregation, and the
//! classic sequential incremental MSF built on them.
//!
//! This is the paper's sequential baseline (reference \[47\]): inserting an
//! edge into an MSF takes `O(lg n)` amortized — find the heaviest edge on
//! the cycle the new edge closes, and evict it if heavier (the red rule,
//! one edge at a time). The benchmark harness compares
//! `bimst_core::BatchMsf` against [`IncrementalMsf`] to reproduce the
//! crossover the paper's work bounds predict (experiment E2).
//!
//! # Implementation
//!
//! Splay-based link-cut trees over an *edge-subdivided* forest: every MSF
//! edge is itself a node carrying its weight key, so "heaviest edge on the
//! path" is a plain subtree-max aggregate over preferred paths. Links and
//! cuts are rooted via `evert` (lazy path reversal).

use bimst_primitives::{EdgeId, FxHashMap, WKey};

const NONE: u32 = u32::MAX;

/// A node of the splay forest: either a vertex or a subdivided edge.
struct Node {
    parent: u32,
    child: [u32; 2],
    /// Lazy reversal flag.
    flip: bool,
    /// This node's own key (phantom for vertices).
    key: WKey,
    /// Max key in the node's splay subtree (i.e., on its preferred path).
    max_key: WKey,
    /// Node holding `max_key` in the subtree.
    max_node: u32,
}

impl Node {
    fn new(key: WKey) -> Self {
        Node {
            parent: NONE,
            child: [NONE, NONE],
            flip: false,
            key,
            max_key: key,
            max_node: NONE,
        }
    }
}

/// Link-cut forest with path maxima.
///
/// Vertices are `0..n`. Edges are added with [`LinkCutForest::link`] and
/// removed by [`LinkCutForest::cut_edge`]; both endpoints and the edge key
/// are tracked internally via subdivision nodes.
pub struct LinkCutForest {
    nodes: Vec<Node>,
    /// Per live edge: `(subdivision node, u, v)`.
    edge_nodes: FxHashMap<EdgeId, (u32, u32, u32)>,
    free: Vec<u32>,
}

impl LinkCutForest {
    /// A forest of `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        LinkCutForest {
            nodes: (0..n).map(|_| Node::new(WKey::phantom())).collect(),
            edge_nodes: FxHashMap::default(),
            free: Vec::new(),
        }
    }

    // --- splay machinery ------------------------------------------------

    fn is_splay_root(&self, x: u32) -> bool {
        let p = self.nodes[x as usize].parent;
        p == NONE || (self.nodes[p as usize].child[0] != x && self.nodes[p as usize].child[1] != x)
    }

    fn push_down(&mut self, x: u32) {
        if self.nodes[x as usize].flip {
            self.nodes[x as usize].flip = false;
            self.nodes[x as usize].child.swap(0, 1);
            for i in 0..2 {
                let c = self.nodes[x as usize].child[i];
                if c != NONE {
                    self.nodes[c as usize].flip ^= true;
                }
            }
        }
    }

    fn pull_up(&mut self, x: u32) {
        let mut best = self.nodes[x as usize].key;
        let mut who = x;
        for i in 0..2 {
            let c = self.nodes[x as usize].child[i];
            if c != NONE && self.nodes[c as usize].max_key > best {
                best = self.nodes[c as usize].max_key;
                who = self.nodes[c as usize].max_node;
            }
        }
        self.nodes[x as usize].max_key = best;
        self.nodes[x as usize].max_node = who;
    }

    fn rotate(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent;
        let g = self.nodes[p as usize].parent;
        let dir = (self.nodes[p as usize].child[1] == x) as usize;
        let b = self.nodes[x as usize].child[1 - dir];
        // p adopts b.
        self.nodes[p as usize].child[dir] = b;
        if b != NONE {
            self.nodes[b as usize].parent = p;
        }
        // x adopts p.
        self.nodes[x as usize].child[1 - dir] = p;
        self.nodes[p as usize].parent = x;
        // g adopts x (or x becomes a path root).
        self.nodes[x as usize].parent = g;
        if g != NONE {
            for i in 0..2 {
                if self.nodes[g as usize].child[i] == p {
                    self.nodes[g as usize].child[i] = x;
                }
            }
        }
        self.pull_up(p);
        self.pull_up(x);
    }

    fn splay(&mut self, x: u32) {
        // Push flips down the access path first.
        let mut path = vec![x];
        let mut cur = x;
        while !self.is_splay_root(cur) {
            cur = self.nodes[cur as usize].parent;
            path.push(cur);
        }
        for &y in path.iter().rev() {
            self.push_down(y);
        }
        while !self.is_splay_root(x) {
            let p = self.nodes[x as usize].parent;
            if !self.is_splay_root(p) {
                let g = self.nodes[p as usize].parent;
                let zig_zig = (self.nodes[g as usize].child[1] == p)
                    == (self.nodes[p as usize].child[1] == x);
                if zig_zig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
    }

    /// Makes the path from `x` to its tree root preferred, splays `x`.
    fn access(&mut self, x: u32) {
        self.splay(x);
        // Detach right subtree (deeper part of old preferred path).
        let r = self.nodes[x as usize].child[1];
        if r != NONE {
            self.nodes[x as usize].child[1] = NONE;
            self.pull_up(x);
        }
        let cur = x;
        while self.nodes[cur as usize].parent != NONE {
            let p = self.nodes[cur as usize].parent;
            self.splay(p);
            self.nodes[p as usize].child[1] = cur;
            self.pull_up(p);
            self.splay(cur);
        }
    }

    /// Makes `x` the root of its represented tree.
    fn evert(&mut self, x: u32) {
        self.access(x);
        self.nodes[x as usize].flip ^= true;
        self.push_down(x);
    }

    fn find_root(&mut self, mut x: u32) -> u32 {
        self.access(x);
        self.push_down(x);
        while self.nodes[x as usize].child[0] != NONE {
            x = self.nodes[x as usize].child[0];
            self.push_down(x);
        }
        self.splay(x);
        x
    }

    // --- public interface -------------------------------------------------

    /// Whether `u` and `v` are connected. Amortized `O(lg n)`.
    pub fn connected(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        self.find_root(u) == self.find_root(v)
    }

    /// Links `u` and `v` with an edge of the given key. The endpoints must
    /// be in different trees.
    pub fn link(&mut self, u: u32, v: u32, id: EdgeId, key: WKey) {
        debug_assert!(!self.connected(u, v), "link would close a cycle");
        let e = if let Some(e) = self.free.pop() {
            self.nodes[e as usize] = Node::new(key);
            e
        } else {
            self.nodes.push(Node::new(key));
            (self.nodes.len() - 1) as u32
        };
        self.nodes[e as usize].max_node = e;
        self.edge_nodes.insert(id, (e, u, v));
        // u - e - v via two evert+attach steps (standard LCT link: the
        // everted tree hangs off its new represented parent by a
        // path-parent pointer).
        self.evert(u);
        self.nodes[u as usize].parent = e;
        self.evert(e);
        self.nodes[e as usize].parent = v;
        self.access(e);
    }

    /// Detaches represented-tree neighbors `a` and `b`. After
    /// `evert(a); access(b)` the preferred path is exactly `a–b`, with `b`
    /// the splay root and `a` its left child; snipping that splay edge
    /// severs the represented edge, while path-parent pointers elsewhere
    /// keep hanging off the correct represented nodes.
    fn cut_pair(&mut self, a: u32, b: u32) {
        self.evert(a);
        self.access(b);
        self.push_down(b);
        debug_assert_eq!(
            self.nodes[b as usize].child[0], a,
            "cut of non-adjacent pair"
        );
        self.nodes[b as usize].child[0] = NONE;
        self.nodes[a as usize].parent = NONE;
        self.pull_up(b);
    }

    /// Cuts the edge with the given id.
    pub fn cut_edge(&mut self, id: EdgeId) {
        let (e, u, v) = self.edge_nodes.remove(&id).expect("cut of unknown edge");
        self.cut_pair(u, e);
        self.cut_pair(e, v);
        // e is now a represented singleton with no inbound pointers.
        self.free.push(e);
    }

    /// Heaviest edge `(id-bearing key, edge node)` on the `u`–`v` path, or
    /// `None` if disconnected or `u == v`. Amortized `O(lg n)`.
    pub fn path_max(&mut self, u: u32, v: u32) -> Option<WKey> {
        if u == v || !self.connected(u, v) {
            return None;
        }
        self.evert(u);
        self.access(v);
        // v's splay tree now holds exactly the u..v path.
        let k = self.nodes[v as usize].max_key;
        (!k.is_phantom()).then_some(k)
    }
}

/// The classic sequential incremental MSF: one edge at a time, `O(lg n)`
/// amortized per insertion (the paper's baseline \[47\]).
pub struct IncrementalMsf {
    lc: LinkCutForest,
    n: usize,
    edges: FxHashMap<EdgeId, (u32, u32, f64)>,
    weight_sum: f64,
    components: usize,
}

impl IncrementalMsf {
    /// An edgeless MSF over `n` vertices.
    pub fn new(n: usize) -> Self {
        IncrementalMsf {
            lc: LinkCutForest::new(n),
            n,
            edges: FxHashMap::default(),
            weight_sum: 0.0,
            components: n,
        }
    }

    /// Inserts one edge; returns the evicted edge id, if any.
    /// Self-loops are ignored (returns `None`).
    pub fn insert(&mut self, u: u32, v: u32, w: f64, id: EdgeId) -> Option<EdgeId> {
        assert!((u as usize) < self.n && (v as usize) < self.n);
        if u == v {
            return None;
        }
        let key = WKey::new(w, id);
        if !self.lc.connected(u, v) {
            self.lc.link(u, v, id, key);
            self.edges.insert(id, (u, v, w));
            self.weight_sum += w;
            self.components -= 1;
            return None;
        }
        let maxk = self.lc.path_max(u, v).expect("connected pair has a path");
        if maxk <= key {
            return None; // new edge is the heaviest on its cycle
        }
        // Evict the heaviest cycle edge, insert the new one.
        self.lc.cut_edge(maxk.id);
        let (_, _, old_w) = self.edges.remove(&maxk.id).expect("evicted edge live");
        self.weight_sum -= old_w;
        self.lc.link(u, v, id, key);
        self.edges.insert(id, (u, v, w));
        self.weight_sum += w;
        Some(maxk.id)
    }

    /// Total MSF weight.
    pub fn msf_weight(&self) -> f64 {
        self.weight_sum
    }

    /// Number of MSF edges.
    pub fn msf_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Whether `u` and `v` are connected.
    pub fn connected(&mut self, u: u32, v: u32) -> bool {
        self.lc.connected(u, v)
    }

    /// Iterates over MSF edges as `(id, u, v, w)`.
    pub fn iter_msf_edges(&self) -> impl Iterator<Item = (EdgeId, u32, u32, f64)> + '_ {
        self.edges.iter().map(|(&id, &(u, v, w))| (id, u, v, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bimst_primitives::hash::hash2;

    #[test]
    fn connectivity_link_cut() {
        let mut lc = LinkCutForest::new(5);
        assert!(!lc.connected(0, 1));
        lc.link(0, 1, 100, WKey::new(1.0, 100));
        lc.link(1, 2, 101, WKey::new(2.0, 101));
        lc.link(3, 4, 102, WKey::new(3.0, 102));
        assert!(lc.connected(0, 2));
        assert!(!lc.connected(2, 3));
        lc.cut_edge(101);
        assert!(lc.connected(0, 1));
        assert!(!lc.connected(0, 2));
    }

    #[test]
    fn cut_edge_correctness() {
        // Cut every edge of a random tree in random order; connectivity must
        // match a naive forest at every step.
        let n = 60u32;
        let mut lc = LinkCutForest::new(n as usize);
        let mut naive = bimst_rctree_naive_stub::Naive::new(n as usize);
        let mut ids = Vec::new();
        for v in 1..n {
            let u = (hash2(1, v as u64) % v as u64) as u32;
            lc.link(u, v, v as u64, WKey::new(v as f64, v as u64));
            naive.link(u, v, v as u64);
            ids.push(v as u64);
        }
        for k in 0..ids.len() {
            let i = (hash2(2, k as u64) as usize) % ids.len();
            let id = ids[i];
            if !naive.has(id) {
                continue;
            }
            lc.cut_edge(id);
            naive.cut(id);
            for a in 0..n {
                let b = (hash2(3, (k as u64) << 32 | a as u64) % n as u64) as u32;
                assert_eq!(lc.connected(a, b), naive.connected(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn path_max_matches_brute() {
        let mut lc = LinkCutForest::new(5);
        for (i, &(u, v, w)) in [(0, 1, 5.0), (1, 2, 9.0), (2, 3, 2.0), (3, 4, 7.0)]
            .iter()
            .enumerate()
        {
            lc.link(u, v, i as u64, WKey::new(w, i as u64));
        }
        assert_eq!(lc.path_max(0, 4).unwrap().w, 9.0);
        assert_eq!(lc.path_max(2, 4).unwrap().w, 7.0);
        assert_eq!(lc.path_max(3, 4).unwrap().w, 7.0);
        assert_eq!(lc.path_max(2, 2), None);
    }

    #[test]
    fn incremental_msf_matches_kruskal_weight() {
        // Insert random edges one at a time; final MSF weight must equal a
        // from-scratch Kruskal over everything.
        let n = 120u32;
        let mut inc = IncrementalMsf::new(n as usize);
        let mut all: Vec<(u32, u32, f64, u64)> = Vec::new();
        for i in 0..800u64 {
            let u = (hash2(5, 2 * i) % n as u64) as u32;
            let v = (hash2(5, 2 * i + 1) % n as u64) as u32;
            if u == v {
                continue;
            }
            let w = (hash2(6, i) % 10_000) as f64;
            inc.insert(u, v, w, i);
            all.push((u, v, w, i));
        }
        // Kruskal oracle.
        let mut order: Vec<usize> = (0..all.len()).collect();
        order.sort_by(|&a, &b| WKey::new(all[a].2, all[a].3).cmp(&WKey::new(all[b].2, all[b].3)));
        let mut uf = vec![u32::MAX; n as usize];
        fn find(uf: &mut [u32], x: u32) -> u32 {
            if uf[x as usize] == u32::MAX {
                return x;
            }
            let r = find(uf, uf[x as usize]);
            uf[x as usize] = r;
            r
        }
        let mut expect = 0.0;
        let mut cnt = 0usize;
        for i in order {
            let (u, v, w, _) = all[i];
            let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
            if ru != rv {
                uf[ru as usize] = rv;
                expect += w;
                cnt += 1;
            }
        }
        assert_eq!(inc.msf_edge_count(), cnt);
        assert!(
            (inc.msf_weight() - expect).abs() < 1e-9,
            "{} vs {}",
            inc.msf_weight(),
            expect
        );
    }

    /// Tiny naive forest used by the cut test (kept local to avoid a dev
    /// dependency cycle with bimst-rctree).
    mod bimst_rctree_naive_stub {
        use std::collections::HashMap;

        pub struct Naive {
            n: usize,
            edges: HashMap<u64, (u32, u32)>,
        }

        impl Naive {
            pub fn new(n: usize) -> Self {
                Naive {
                    n,
                    edges: HashMap::new(),
                }
            }
            pub fn link(&mut self, u: u32, v: u32, id: u64) {
                self.edges.insert(id, (u, v));
            }
            pub fn cut(&mut self, id: u64) {
                self.edges.remove(&id);
            }
            pub fn has(&self, id: u64) -> bool {
                self.edges.contains_key(&id)
            }
            pub fn connected(&self, a: u32, b: u32) -> bool {
                if a == b {
                    return true;
                }
                let mut adj = vec![Vec::new(); self.n];
                for &(u, v) in self.edges.values() {
                    adj[u as usize].push(v);
                    adj[v as usize].push(u);
                }
                let mut seen = vec![false; self.n];
                let mut stack = vec![a];
                seen[a as usize] = true;
                while let Some(x) = stack.pop() {
                    if x == b {
                        return true;
                    }
                    for &y in &adj[x as usize] {
                        if !seen[y as usize] {
                            seen[y as usize] = true;
                            stack.push(y);
                        }
                    }
                }
                false
            }
        }
    }
}
