//! Reproduces Figure 1 of the paper: a weighted tree with marked vertices
//! A–E, and its compressed path tree.
//!
//! ```sh
//! cargo run --release --example figure1
//! ```
//!
//! The compressed path tree keeps the marked vertices plus the Steiner
//! (branching) vertices, each edge labelled with the heaviest edge on the
//! tree path it replaces — every pairwise heaviest-edge query between
//! marked vertices is preserved.

use bimst_core::compressed_path_tree;
use bimst_rctree::RcForest;

fn main() {
    // The Figure 1 tree. Marked vertices: A=0, B=1, C=2, D=3, E=4;
    // unmarked internal vertices 5..=15 (s1..s7 and dangling subtrees).
    let name = |v: u32| -> String {
        match v {
            0 => "A".into(),
            1 => "B".into(),
            2 => "C".into(),
            3 => "D".into(),
            4 => "E".into(),
            other => format!("s{}", other - 4),
        }
    };
    let links: Vec<(u32, u32, f64, u64)> = [
        (0, 5, 10.0),
        (5, 6, 2.0),
        (6, 1, 5.0),
        (5, 7, 6.0),
        (7, 8, 3.0),
        (8, 2, 9.0),
        (8, 9, 4.0),
        (9, 3, 7.0),
        (7, 10, 1.0),
        (10, 11, 12.0),
        (11, 4, 3.0),
        (6, 12, 8.0),
        (9, 13, 4.0),
        (11, 14, 5.0),
        (12, 15, 3.0),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(u, v, w))| (u, v, w, i as u64))
    .collect();

    let mut forest = RcForest::new(16, 7);
    forest.batch_update(&[], &links);

    println!("input tree ({} vertices, {} edges):", 16, links.len());
    for &(u, v, w, _) in &links {
        println!("  {} --{}-- {}", name(u), w, name(v));
    }

    let marks = [0u32, 1, 2, 3, 4];
    let cpt = compressed_path_tree(&forest, &marks);

    println!("\ncompressed path tree w.r.t. {{A, B, C, D, E}}:");
    println!(
        "  {} vertices, {} edges (input had 16 vertices)",
        cpt.vertices.len(),
        cpt.edges.len()
    );
    for e in &cpt.edges {
        println!("  {} --{}-- {}", name(e.u), e.key.w, name(e.v));
    }

    // Validate the defining property against brute force.
    let naive = {
        let mut f = bimst_rctree::naive::NaiveForest::new(16);
        f.batch_update(&[], &links);
        f
    };
    for &a in &marks {
        for &b in &marks {
            if a >= b {
                continue;
            }
            let brute = naive.path_max(a, b).unwrap();
            let cpt_pm = bimst_msf::ForestPathMax::new(
                16,
                &cpt.edges
                    .iter()
                    .map(|e| (e.u, e.v, e.key))
                    .collect::<Vec<_>>(),
            )
            .query(a, b)
            .unwrap();
            assert_eq!(brute, cpt_pm);
            println!(
                "  heaviest({}, {}) = {}  ✓ matches the full tree",
                name(a),
                name(b),
                cpt_pm.w
            );
        }
    }
}
