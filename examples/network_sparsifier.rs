//! Sliding-window cut sparsification of a dense network.
//!
//! ```sh
//! cargo run --release --example network_sparsifier
//! ```
//!
//! Maintains an ε-cut sparsifier over a windowed stream on a dense
//! two-community graph with a planted sparse cut, then checks how well the
//! sparsifier preserves the planted cut and a few random cuts.

use bimst_primitives::hash::hash2;
use bimst_sliding::{Sparsifier, SparsifierConfig};
use std::collections::HashSet;

fn cut_weight(edges: &[(u32, u32, f64)], side: &HashSet<u32>) -> f64 {
    edges
        .iter()
        .filter(|&&(u, v, _)| side.contains(&u) != side.contains(&v))
        .map(|&(_, _, w)| w)
        .sum()
}

fn main() {
    let half = 40u32;
    let n = (2 * half) as usize;
    let eps = 0.4;
    let mut cfg = SparsifierConfig::scaled(n, eps);
    // The scaled default keeps nearly everything at n = 80 (p̃ₑ saturates at
    // 1); force aggressive sampling so the demo actually sparsifies.
    cfg.sample_factor = 2.0;
    println!(
        "n = {n}, ε = {eps}; config: levels = {}, copies = {}, k_cert = {}, sample_factor = {:.1}",
        cfg.levels, cfg.copies, cfg.k_cert, cfg.sample_factor
    );

    let mut sp = Sparsifier::new(n, cfg, 11);

    // Stream: dense intra-community edges, 6 planted bridges, in 4 batches,
    // expiring the first batch at the end.
    let mut window: Vec<(u32, u32)> = Vec::new();
    for a in 0..half {
        for b in (a + 1)..half {
            if hash2(1, (a as u64) << 32 | b as u64).is_multiple_of(3) {
                window.push((a, b));
                window.push((half + a, half + b));
            }
        }
    }
    for i in 0..6 {
        window.push((i, half + i));
    }
    // Shuffle deterministically so bridges arrive interleaved.
    let mut order: Vec<usize> = (0..window.len()).collect();
    order.sort_by_key(|&i| hash2(7, i as u64));
    let stream: Vec<(u32, u32)> = order.iter().map(|&i| window[i]).collect();

    let quarter = stream.len() / 4;
    for c in 0..4 {
        let lo = c * quarter;
        let hi = if c == 3 {
            stream.len()
        } else {
            (c + 1) * quarter
        };
        sp.batch_insert(&stream[lo..hi]);
    }
    // Slide the window past the first batch.
    sp.batch_expire(quarter as u64);
    let live = &stream[quarter..];

    let sparse = sp.sparsify();
    println!(
        "\nwindow: {} edges → sparsifier: {} weighted edges ({:.0}% kept)",
        live.len(),
        sparse.len(),
        100.0 * sparse.len() as f64 / live.len() as f64
    );

    let orig: Vec<(u32, u32, f64)> = live.iter().map(|&(u, v)| (u, v, 1.0)).collect();
    let spw: Vec<(u32, u32, f64)> = sparse.iter().map(|&(u, v, w, _)| (u, v, w)).collect();

    // The planted community cut plus random cuts.
    println!(
        "\n{:>24} {:>10} {:>12} {:>8}",
        "cut", "original", "sparsifier", "ratio"
    );
    let planted: HashSet<u32> = (0..half).collect();
    let co = cut_weight(&orig, &planted);
    let cs = cut_weight(&spw, &planted);
    println!(
        "{:>24} {:>10.0} {:>12.1} {:>8.2}",
        "planted (A|B)",
        co,
        cs,
        cs / co.max(1.0)
    );
    for trial in 0..5u64 {
        let side: HashSet<u32> = (0..n as u32)
            .filter(|&v| hash2(trial + 100, v as u64).is_multiple_of(2))
            .collect();
        let co = cut_weight(&orig, &side);
        let cs = cut_weight(&spw, &side);
        println!(
            "{:>24} {:>10.0} {:>12.1} {:>8.2}",
            format!("random #{trial}"),
            co,
            cs,
            cs / co.max(1.0)
        );
    }
    println!("\n(constants are laptop-scaled; see EXPERIMENTS.md E6 for the measured quality)");
}
