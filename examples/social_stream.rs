//! Sliding-window monitoring of a social interaction stream.
//!
//! ```sh
//! cargo run --release --example social_stream
//! ```
//!
//! The scenario from the paper's motivation: an endless stream of
//! interactions (edges) where only the most recent window matters. We keep
//! four monitors running simultaneously over one stream —
//! connectivity-with-component-count, bipartiteness, cycle-freeness, and
//! approximate "interaction strength" (MSF weight) — each updated with
//! arbitrary-size batches and expirations.

use bimst_graphgen::EdgeStream;
use bimst_sliding::{ApproxMsfWeight, CycleFree, SwBipartite, SwConnEager};

fn main() {
    let n = 2_000usize;
    let window = 6_000u64; // keep the last 6k interactions
    let batch = 1_000usize;

    let mut stream = EdgeStream::uniform(n as u32, 99);
    let mut conn = SwConnEager::new(n, 1);
    let mut bip = SwBipartite::new(n, 2);
    let mut cyc = CycleFree::new(n, 3);
    let mut strength = ApproxMsfWeight::new(n, 0.2, 100.0, 4);

    println!("streaming {n}-vertex interactions, window = {window}, batches of {batch}\n");
    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>9} {:>12}",
        "round", "arrived", "components", "bipartite", "cyclic", "approx-MSF"
    );

    for round in 0..12u64 {
        let edges = stream.next_batch(batch);
        let pairs: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _, _)| (u, v)).collect();
        let weighted: Vec<(u32, u32, f64)> = edges
            .iter()
            .map(|&(u, v, w, _)| (u, v, 1.0 + w * 99.0)) // weights in [1, 100]
            .collect();

        conn.batch_insert(&pairs);
        bip.batch_insert(&pairs);
        cyc.batch_insert(&pairs);
        strength.batch_insert(&weighted);

        // Slide: once the stream exceeds the window, expire the overflow.
        let arrived = (round + 1) * batch as u64;
        let overflow = arrived.saturating_sub(window);
        let already = conn.window().0;
        let expire = overflow.saturating_sub(already);
        conn.batch_expire(expire);
        bip.batch_expire(expire);
        cyc.batch_expire(expire);
        strength.batch_expire(expire);

        println!(
            "{:>6} {:>10} {:>10} {:>9} {:>9} {:>12.1}",
            round,
            arrived,
            conn.num_components(),
            bip.is_bipartite(),
            cyc.has_cycle(),
            strength.weight()
        );
    }

    // Spot queries.
    println!("\nspot queries on the final window:");
    for (u, v) in [(0u32, 1u32), (10, 20), (100, 1999)] {
        println!("  connected({u}, {v}) = {}", conn.is_connected(u, v));
    }
}
