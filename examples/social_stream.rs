//! Serving a mixed read/write workload over a social interaction stream.
//!
//! ```sh
//! cargo run --release --example social_stream
//! ```
//!
//! The scenario from the paper's motivation, extended to the serving shape
//! the ROADMAP targets: an endless stream of interactions (edges) where
//! only the most recent window matters, interleaved with *batches of
//! queries* — "are these two users connected right now?", "how big is this
//! user's community?", "how stale is the link between them?" — answered by
//! the batch-parallel query engine (`bimst-query`) between write batches.
//!
//! `MixedStream` generates the op mix (inserts, expirations, query batches
//! over warm endpoints); `SwConnEager` maintains the window's MSF; one
//! reusable `QueryBatch` executor serves every read batch from a `ReadHandle`
//! snapshot of the structure — no clones, no locks, shared root walks.

use bimst_graphgen::{MixedConfig, MixedStream, MixedTopology, Op};
use bimst_query::{QueryBatch, ReadHandle};
use bimst_sliding::SwConnEager;

fn main() {
    let n = 2_000u32;
    let cfg = MixedConfig {
        n,
        topology: MixedTopology::PowerLaw, // hubs, like a real social graph
        insert_batch: 1_000,
        query_batch: 512,
        queries_per_insert: 3, // one batch each: connected / path-max / size
        window: 6_000,         // keep the last 6k interactions
    };
    let mut stream = MixedStream::new(cfg, 99);
    let mut window =
        SwConnEager::with_edge_capacity(n as usize, 1, cfg.window.min(n as u64 - 1) as usize);
    let mut engine = QueryBatch::new();

    println!(
        "serving {n}-vertex interaction stream: window = {}, {} writes + 3×{} queries per round\n",
        cfg.window, cfg.insert_batch, cfg.query_batch
    );
    println!(
        "{:>6} {:>9} {:>11} {:>11} {:>13} {:>12}",
        "round", "arrived", "components", "connected%", "max-comp-size", "oldest-link"
    );

    let mut round = 0u64;
    let mut arrived = 0u64;
    let (mut connected_pct, mut max_comp, mut oldest) = (0.0f64, 0usize, None::<u64>);
    while round < 12 {
        match stream.next_op() {
            Op::Insert(batch) => {
                arrived += batch.len() as u64;
                window.batch_insert(&batch);
            }
            Op::Expire(delta) => {
                window.batch_expire(delta);
                let stale = oldest.map_or("-".into(), |tau| format!("τ={tau}"));
                println!(
                    "{round:>6} {arrived:>9} {:>11} {connected_pct:>10.1}% {max_comp:>13} {stale:>12}",
                    window.num_components(),
                );
                round += 1;
            }
            Op::ConnectedQueries(pairs) => {
                let hits = engine
                    .batch_window_connected(&window, &pairs)
                    .iter()
                    .filter(|&&c| c)
                    .count();
                connected_pct = 100.0 * hits as f64 / pairs.len() as f64;
            }
            Op::ComponentSizeQueries(users) => {
                let h = ReadHandle::new(window.msf());
                max_comp = engine
                    .batch_component_size(h, &users)
                    .into_iter()
                    .max()
                    .unwrap_or(0);
            }
            Op::PathMaxQueries(pairs) => {
                // Recency weights are −τ, so the path *maximum* is the
                // oldest link on the connecting path: a staleness probe.
                let h = ReadHandle::new(window.msf());
                oldest = engine
                    .batch_path_max(h, &pairs)
                    .into_iter()
                    .flatten()
                    .map(|k| k.id) // τ of the oldest link
                    .min();
            }
        }
    }

    // A final hand-written spot batch through the same engine.
    let pairs = [(0u32, 1u32), (10, 20), (100, 1999)];
    let answers = engine.batch_window_connected(&window, &pairs);
    println!("\nspot queries on the final window:");
    for ((u, v), c) in pairs.iter().zip(answers) {
        println!("  connected({u}, {v}) = {c}");
    }
}
