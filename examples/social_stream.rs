//! Serving a mixed read/write workload over a social interaction stream —
//! through the real serving path (`bimst-service`), with the write stream
//! logged to a write-ahead log so the window survives the process.
//!
//! ```sh
//! cargo run --release --example social_stream
//! ```
//!
//! The scenario from the paper's motivation, at the serving shape the
//! ROADMAP targets: an endless stream of interactions (edges) where only
//! the most recent window matters, interleaved with *batches of queries* —
//! "are these two users connected right now?", "how big is this user's
//! community?", "how stale is the link between them?" — submitted to a
//! persistent sharded runtime rather than driven inline:
//!
//! * a `MixedStream` generates the op mix and is drained straight into the
//!   service (it is an iterator of ops; `ServiceHandle::submit_op` is the
//!   channel adapter);
//! * the service's writer thread owns the `SwConnEager` window, group-
//!   commits the write batches, and logs every applied write group to the
//!   WAL (one fsync per merged group under the default `GroupCommit`
//!   policy) *before* applying it;
//! * its reader pool answers each query ticket from a generation-pinned
//!   snapshot — the `generation` stamp on every answer says exactly which
//!   prefix of the write stream it reflects;
//! * shutdown drains: every admitted ticket resolves before the structure
//!   is dropped — and then the demo **recovers**: `Service::recover`
//!   rebuilds the window from the log (newest checkpoint + tail replay)
//!   and resumes serving at the exact generation the first incarnation
//!   reached, which the spot queries at the end run against.

use bimst_graphgen::{MixedConfig, MixedStream, MixedTopology, Op};
use bimst_service::{QueryReq, QueryResp, Service, ServiceConfig};
use bimst_sliding::{TenantConfig, TenantSpec};

/// Prints the phase's metrics digest and schema-validates both exports —
/// the JSON must round-trip through the offline bench parser with every
/// `required` metric present, and every Prometheus line must be a
/// comment or a `bimst_`-prefixed sample. The CI smoke run leans on
/// these asserts: a rename or a malformed export fails the example, not
/// just a dashboard somewhere. With the `obs` feature compiled off the
/// snapshot is empty and the digest says so.
fn report_metrics(phase: &str, snap: &bimst_obs::Snapshot, required: &[&str]) {
    if !bimst_obs::enabled() {
        println!("\n[{phase}] metrics: obs compiled out");
        return;
    }
    let json = snap.to_json();
    let doc = bimst_bench::json::parse(&json).expect("snapshot JSON parses");
    let lookup = |name: &str| {
        ["counters", "gauges"]
            .iter()
            .find_map(|sect| doc.get(sect)?.get(name)?.as_f64())
            .or_else(|| doc.get("histograms")?.get(name)?.get("count")?.as_f64())
    };
    for name in required {
        assert!(
            lookup(name).is_some(),
            "[{phase}] metric {name} missing from the exported snapshot"
        );
    }
    for line in snap.to_prometheus().lines() {
        assert!(
            line.starts_with("# TYPE bimst_")
                || (line.starts_with("bimst_") && line.rsplit(' ').next().is_some()),
            "[{phase}] malformed Prometheus line: {line}"
        );
    }
    println!("\n[{phase}] metrics snapshot (JSON + Prometheus exports validated):");
    for name in required {
        println!("  {name:<34} {}", lookup(name).unwrap_or(0.0));
    }
}

fn main() {
    let n = 2_000u32;
    let seed = 1u64;
    let cfg = MixedConfig {
        n,
        topology: MixedTopology::PowerLaw, // hubs, like a real social graph
        insert_batch: 1_000,
        query_batch: 512,
        queries_per_insert: 3, // one batch each: connected / path-max / size
        window: 6_000,         // keep the last 6k interactions
        tenants: 0,            // the durable phase serves one window
    };
    let svc_cfg = ServiceConfig {
        readers: 2,
        queue_cap: 64,
        write_budget: cfg.insert_batch,
        coalesce: true,
        // Defaults: sync = GroupCommit (one fsync per merged write group),
        // periodic compacted checkpoints.
        ..ServiceConfig::default()
    };
    let mut stream = MixedStream::new(cfg, 99);

    // The durable log lives in a directory; a real deployment would point
    // this at persistent storage.
    let dir = std::env::temp_dir().join(format!("bimst_social_stream_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let svc = Service::eager_durable(&dir, n as usize, seed, svc_cfg).expect("create WAL store");

    println!(
        "serving {n}-vertex interaction stream: window = {}, {} writes + 3×{} queries per round,\n\
         writer + 2 reader shards behind a bounded queue, WAL at {}\n",
        cfg.window,
        cfg.insert_batch,
        cfg.query_batch,
        dir.display()
    );
    println!(
        "{:>6} {:>4} {:>9} {:>11} {:>13} {:>12}",
        "round", "gen", "arrived", "connected%", "max-comp-size", "oldest-link"
    );

    let mut round = 0u64;
    let mut arrived = 0u64;
    let mut generation = 0u64;
    let (mut connected_pct, mut max_comp, mut oldest) = (0.0f64, 0usize, None::<u64>);
    while round < 12 {
        let op = stream.next_op();
        let is_expire = matches!(op, Op::Expire(_));
        if let Op::Insert(batch) = &op {
            arrived += batch.len() as u64;
        }
        // A closed-loop client: submit each query batch, await its
        // answers. (Concurrent clients would pipeline their tickets and
        // let the writer coalesce the queued batches.)
        if let Some(t) = svc.submit_op(op).expect("service alive") {
            let answered = t.wait().expect("admitted queries are answered");
            generation = answered.generation;
            match answered.resp {
                QueryResp::WindowConnected(hits) => {
                    connected_pct =
                        100.0 * hits.iter().filter(|&&c| c).count() as f64 / hits.len() as f64;
                }
                QueryResp::ComponentSize(sizes) => {
                    max_comp = sizes.into_iter().max().unwrap_or(0);
                }
                QueryResp::PathMax(keys) => {
                    // Recency weights are −τ, so the path *maximum* is the
                    // oldest link on the connecting path: a staleness probe.
                    oldest = keys.into_iter().flatten().map(|k| k.id).min();
                }
                // This stream is built without fold ops (`MixedStream::new`).
                _ => {}
            }
        }
        if is_expire {
            let stale = oldest.map_or("-".into(), |tau| format!("τ={tau}"));
            println!(
                "{round:>6} {generation:>4} {arrived:>9} {connected_pct:>10.1}% {max_comp:>13} {stale:>12}"
            );
            round += 1;
        }
    }

    // Crash-free shutdown: drain (nothing admitted is lost), final sync.
    // The barrier reads the generation the writer actually reached (the
    // last *answered query*'s stamp is older: writes kept landing).
    let final_gen = svc
        .barrier()
        .expect("service alive")
        .wait()
        .expect("barrier resolves");
    // The snapshot rides the same admission queue as the ops it counts,
    // so it covers exactly the phase's workload. `wal_records_appended`
    // equals the generation: one log record per applied write group.
    report_metrics(
        "durable serving",
        &svc.metrics_snapshot().expect("service alive"),
        &[
            "service_write_groups",
            "service_generation",
            "service_queries_window_connected",
            "service_answer_ns_window_connected",
            "service_merge_width_ops",
            "service_queue_depth",
            "wal_records_appended",
            "wal_fsync_ns",
            "engine_rounds",
            "query_batch_size",
        ],
    );
    svc.shutdown();
    println!("\nshutdown at generation {final_gen}; recovering from the log...");

    // Recovery: rebuild from the newest checkpoint + WAL tail. The store
    // remembers its own identity (n, seed, expiry discipline); serving
    // resumes at the recovered generation.
    let svc = Service::recover(&dir, svc_cfg).expect("recover from WAL");
    let recovered = svc
        .barrier()
        .expect("service alive")
        .wait()
        .expect("barrier resolves");
    println!("recovered at generation {recovered} — spot queries against the restored window:");

    // A final hand-written spot batch through the recovered serving path.
    let pairs = vec![(0u32, 1u32), (10, 20), (100, 1999)];
    let answers = svc
        .query(QueryReq::WindowConnected(pairs.clone()))
        .expect("service alive")
        .wait()
        .expect("answered");
    let hits = answers.resp.into_window_connected().unwrap();
    for ((u, v), c) in pairs.iter().zip(hits) {
        println!("  connected({u}, {v}) = {c}");
    }
    assert_eq!(
        recovered, final_gen,
        "recovery must resume exactly where the shutdown left off"
    );
    // A fresh incarnation, a fresh recorder: only the spot queries above
    // have landed, and the generation gauge shows the recovered value.
    report_metrics(
        "recovery",
        &svc.metrics_snapshot().expect("service alive"),
        &[
            "service_generation",
            "service_queries_window_connected",
            "service_submitted_ops",
        ],
    );
    svc.shutdown();
    std::fs::remove_dir_all(&dir).expect("clean up the demo log");

    // --- Multi-tenant serving: two logical windows over one stream ---
    //
    // Two products watch the same interaction firehose with very different
    // retention: the feed ranker wants the full 6k-interaction window, the
    // abuse detector only the freshest 256. One shared structure serves
    // the ranker through its per-tenant cutoff; the detector's window is
    // short enough (below the divergence fraction) that it gets a
    // dedicated small structure fed from the same admission log — both
    // behind the same service, with the stream's tenant-tagged query
    // batches routed by `submit_op`.
    println!("\nmulti-tenant phase: feed window 6000 vs abuse window 256, one stream:");
    let specs = [
        TenantSpec {
            id: 0,
            window: 6_000,
        }, // feed ranker (shared route)
        TenantSpec { id: 1, window: 256 }, // abuse detector (dedicated)
    ];
    let tsvc = Service::tenants(
        n as usize,
        seed,
        &specs,
        // Dedicate below ℓ_max/8 = 750: the 256-window detector falls
        // back to its own small structure, the 6000-window ranker shares.
        // (The route counters in the phase's metrics digest show both
        // paths taken.)
        TenantConfig {
            dedicated_fraction: 1.0 / 8.0,
        },
        svc_cfg,
    );
    let tcfg_stream = MixedConfig {
        queries_per_insert: 2, // connectivity batches rotate tenants 0, 1
        tenants: 2,
        ..cfg
    };
    let mut per_tenant_hits = [0usize; 2];
    let mut per_tenant_total = [0usize; 2];
    for op in MixedStream::new(tcfg_stream, 7).take(60) {
        let tenant = match &op {
            Op::TenantConnectedQueries(t, _) => Some(*t),
            _ => None,
        };
        if let Some(t) = tsvc.submit_op(op).expect("service alive") {
            let answered = t.wait().expect("admitted queries are answered");
            if let (Some(tenant), QueryResp::WindowConnected(hits)) = (tenant, answered.resp) {
                per_tenant_hits[tenant as usize] += hits.iter().filter(|&&c| c).count();
                per_tenant_total[tenant as usize] += hits.len();
            }
        }
    }
    for (t, label) in [(0usize, "feed (ℓ=6000)"), (1, "abuse (ℓ=256)")] {
        println!(
            "  tenant {t} {label:>14}: {:>5.1}% of sampled pairs connected",
            100.0 * per_tenant_hits[t] as f64 / per_tenant_total[t].max(1) as f64
        );
    }
    // The shorter window can only see a subset of the longer one's edges
    // (nested suffixes), so its hit rate cannot exceed the feed's.
    assert!(
        per_tenant_hits[1] * per_tenant_total[0] <= per_tenant_hits[0] * per_tenant_total[1],
        "a nested shorter window cannot be better-connected than the full one"
    );
    // The tenant snapshot folds the `TenantSet`'s own recorder in: route
    // counters (every tenant query takes exactly one of shared/dedicated)
    // and the cutoff-lag histogram (τ_tenant − τ_shared per advance).
    report_metrics(
        "multi-tenant",
        &tsvc.metrics_snapshot().expect("service alive"),
        &[
            "service_queries_tenant_connected",
            "service_tenant_shared_queries",
            "service_tenant_dedicated_queries",
            "tenant_cutoff_lag",
        ],
    );
    tsvc.shutdown();
}
