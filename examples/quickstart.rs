//! Quickstart: batch-incremental minimum spanning forests.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an MSF over a small graph in three batches, showing insertions,
//! evictions (the red rule at work), and queries.

use bimst_core::BatchMsf;

fn main() {
    // A forest over 6 vertices; the seed drives the randomized substrate.
    let mut msf = BatchMsf::new(6, 42);

    // Batch 1: a spanning path. Edges are (u, v, weight, id).
    let res = msf.batch_insert(&[
        (0, 1, 4.0, 100),
        (1, 2, 7.0, 101),
        (2, 3, 2.0, 102),
        (3, 4, 9.0, 103),
        (4, 5, 5.0, 104),
    ]);
    println!(
        "batch 1: +{} edges, weight {}",
        res.inserted.len(),
        msf.msf_weight()
    );
    assert_eq!(msf.num_components(), 1);

    // Batch 2: shortcuts. Each closes a cycle; the heaviest edge on each
    // cycle is evicted (the classic "red rule", applied batch-wide through
    // the compressed path tree).
    let res = msf.batch_insert(&[
        (1, 3, 3.0, 200), // cycle 1-2-3: evicts (1,2,w=7)
        (3, 5, 6.0, 201), // cycle 3-4-5: evicts (3,4,w=9)
    ]);
    println!(
        "batch 2: inserted {:?}, evicted {:?}, weight {}",
        res.inserted,
        res.evicted,
        msf.msf_weight()
    );
    assert_eq!(res.evicted, vec![101, 103]);

    // Batch 3: edges that cannot improve the MSF are rejected outright.
    let res = msf.batch_insert(&[(0, 5, 50.0, 300)]);
    println!("batch 3: rejected {:?}", res.rejected);
    assert_eq!(res.rejected, vec![300]);

    // Queries.
    println!("connected(0, 5) = {}", msf.connected(0, 5));
    let k = msf.path_max(0, 5).unwrap();
    println!(
        "heaviest edge on the 0..5 MSF path: weight {} (id {})",
        k.w, k.id
    );

    println!("\nfinal MSF:");
    let mut edges: Vec<_> = msf.iter_msf_edges().collect();
    edges.sort_by_key(|&(id, ..)| id);
    for (id, u, v, k) in edges {
        println!("  edge {id}: ({u}, {v}) weight {}", k.w);
    }
    println!("total weight: {}", msf.msf_weight());
}
