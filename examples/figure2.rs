//! Reproduces Figure 2 of the paper: the 12-vertex tree a–l, its recursive
//! clustering by randomized tree contraction, and the resulting RC tree.
//!
//! ```sh
//! cargo run --release --example figure2
//! ```
//!
//! The exact clustering depends on the coin flips (ours are seeded), so the
//! printed RC tree is *a* valid clustering of the Figure 2 tree rather than
//! the one drawn in the paper; the structural invariants (cluster kinds,
//! boundaries, constant fan-in, one root) are the same.

use bimst_rctree::{ClusterKind, RcForest, NONE_CLUSTER};

fn main() {
    // Figure 2 tree: vertices a..l = 0..11.
    //      a-b, b-c, b-d, d-e, e-f, f-g, e-h, h-i, i-j, i-k, k-l
    let name = |v: u32| (b'a' + v as u8) as char;
    let links: Vec<(u32, u32, f64, u64)> = [
        (0, 1),   // a-b
        (1, 2),   // b-c
        (1, 3),   // b-d
        (3, 4),   // d-e
        (4, 5),   // e-f
        (5, 6),   // f-g
        (4, 7),   // e-h
        (7, 8),   // h-i
        (8, 9),   // i-j
        (8, 10),  // i-k
        (10, 11), // k-l
    ]
    .iter()
    .enumerate()
    .map(|(i, &(u, v))| (u, v, 1.0 + i as f64, i as u64))
    .collect();

    let mut forest = RcForest::new(12, 2020);
    forest.batch_update(&[], &links);
    assert_eq!(forest.num_components(), 1);

    println!("Figure 2 tree: 12 vertices a..l, 11 edges");
    println!("RC tree produced by seeded tree contraction:\n");

    // Walk the RC tree from the root down and pretty-print it.
    let root = forest.root_cluster_of(0);
    print_cluster(&forest, root, 0, &name);

    // Invariants the paper relies on.
    let mut count = 0usize;
    let mut max_fanin = 0usize;
    let mut stack = vec![root];
    while let Some(c) = stack.pop() {
        count += 1;
        let cl = forest.cluster(c);
        max_fanin = max_fanin.max(cl.children.len());
        for ch in cl.children.iter() {
            assert_eq!(forest.parent(ch), c);
            stack.push(ch);
        }
    }
    println!("\n{count} clusters total, max fan-in {max_fanin} (constant, as required)");
    assert!(forest.parent(root) == NONE_CLUSTER);
}

fn print_cluster(f: &RcForest, c: u32, depth: usize, name: &dyn Fn(u32) -> char) {
    let cl = f.cluster(c);
    let indent = "  ".repeat(depth);
    let describe = |n: u32| {
        let owner = f.owner(n);
        if f.head(owner) == n {
            format!("{}", name(owner))
        } else {
            // A ternarization phantom on `owner`'s spine.
            format!("{}'", name(owner))
        }
    };
    match cl.kind {
        ClusterKind::LeafVertex { node } => {
            println!("{indent}vertex {}", describe(node));
        }
        ClusterKind::LeafEdge { a, b, .. } => {
            println!("{indent}edge ({}, {})", describe(a), describe(b));
        }
        ClusterKind::Unary { rep, boundary } => {
            println!(
                "{indent}unary cluster {} (boundary {})",
                describe(rep).to_uppercase(),
                describe(boundary)
            );
        }
        ClusterKind::Binary { rep, bound, .. } => {
            println!(
                "{indent}binary cluster {} (boundary {}, {})",
                describe(rep).to_uppercase(),
                describe(bound.0),
                describe(bound.1)
            );
        }
        ClusterKind::Root { rep } => {
            println!("{indent}root cluster {}", describe(rep).to_uppercase());
        }
    }
    for ch in cl.children.iter() {
        print_cluster(f, ch, depth + 1, name);
    }
}
