//! Umbrella crate for the `bimst` workspace: re-exports the public surface
//! of every member so examples, integration tests, and downstream users can
//! depend on one crate.
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction results.
//!
//! ```
//! use bimst_repro::core::BatchMsf;
//! use bimst_repro::query::{QueryBatch, ReadHandle};
//! use bimst_repro::sliding::SwConnEager;
//!
//! let mut msf = BatchMsf::new(8, 1);
//! msf.batch_insert(&[(0, 1, 1.0, 10), (1, 2, 2.0, 11)]);
//! assert!(msf.connected(0, 2));
//!
//! // Batched reads: a snapshot handle plus a reusable executor. Results
//! // are bit-identical to the per-query loop, computed with shared root
//! // walks / shared compressed path trees, in parallel for large batches.
//! let mut q = QueryBatch::new();
//! let h = ReadHandle::new(&msf);
//! assert_eq!(q.batch_connected(h, &[(0, 2), (0, 3)]), vec![true, false]);
//! assert_eq!(q.batch_component_size(h, &[0, 3]), vec![3, 1]);
//! assert_eq!(q.batch_path_max(h, &[(0, 2)])[0].unwrap().w, 2.0);
//!
//! // Path aggregation is monoid-generic: `batch_path_max` is the `MaxW`
//! // instance of `batch_path_fold`, and other monoids fold over the same
//! // shared-CPT plan (min = bottleneck, sum = cost, hops = length).
//! use bimst_repro::monoid::{Hops, MinW};
//! assert_eq!(q.batch_path_fold::<Hops>(h, &[(0, 2), (0, 3)]), vec![Some(2), None]);
//! assert_eq!(q.batch_path_fold::<MinW>(h, &[(0, 2)])[0].unwrap().w, 1.0);
//!
//! let mut win = SwConnEager::new(8, 2);
//! win.batch_insert(&[(0, 1), (1, 2)]);
//! win.batch_expire(1);
//! assert!(!win.is_connected(0, 1));
//! // The same executor serves window-connectivity batches (lazy windows
//! // get the recent-edge test applied for them).
//! assert_eq!(q.batch_window_connected(&win, &[(0, 1), (1, 2)]), vec![false, true]);
//! ```
//!
//! Serving: when ops originate on many threads, hand the window to
//! `bimst-service` — a writer thread group-commits the write stream, a
//! reader pool answers query tickets from generation-pinned snapshots,
//! and a bounded queue provides backpressure (`try_*` variants) with
//! drain-ordered shutdown. Answers are bit-identical to a sequential
//! replay of the admitted ops; see the README's *Serving* section for the
//! architecture diagram and the generation-handoff rules.
//!
//! ```
//! use bimst_repro::service::{QueryReq, Service, ServiceConfig};
//!
//! let svc = Service::eager(8, 2, ServiceConfig::default());
//! let h = svc.handle(); // Clone one per client thread
//! h.insert(vec![(0, 1), (1, 2)]).unwrap();
//! let ticket = h.query(QueryReq::WindowConnected(vec![(0, 2), (0, 7)])).unwrap();
//! let answered = ticket.wait().unwrap();
//! assert_eq!(answered.generation, 1);
//! assert_eq!(answered.resp.into_window_connected().unwrap(), vec![true, false]);
//! drop(h);
//! svc.shutdown(); // drains: every admitted ticket resolves first
//! ```

/// The paper's contribution: compressed path trees and batch-incremental
/// MSF (re-export of `bimst-core`).
pub use bimst_core as core;

/// Batch-dynamic rake-compress trees (re-export of `bimst-rctree`).
pub use bimst_rctree as rctree;

/// Sliding-window applications (re-export of `bimst-sliding`).
pub use bimst_sliding as sliding;

/// Batch-parallel query engine (re-export of `bimst-query`).
pub use bimst_query as query;

/// Sharded serving runtime (re-export of `bimst-service`).
pub use bimst_service as service;

/// Write-ahead op log, checkpoints, crash recovery (re-export of
/// `bimst-wal`).
pub use bimst_wal as wal;

/// Static MSF algorithms (re-export of `bimst-msf`).
pub use bimst_msf as msf;

/// Sequential link-cut baseline (re-export of `bimst-linkcut`).
pub use bimst_linkcut as linkcut;

/// Union-find structures (re-export of `bimst-unionfind`).
pub use bimst_unionfind as unionfind;

/// Join-based ordered sets (re-export of `bimst-ordset`).
pub use bimst_ordset as ordset;

/// Shared primitives (re-export of `bimst-primitives`).
pub use bimst_primitives as primitives;

/// Path-aggregation monoids (re-export of [`primitives::monoid`]): the
/// [`PathMonoid`](primitives::monoid::PathMonoid) trait, its instances
/// (`MaxW`, `MinW`, `SumW`, `Hops`, and the componentwise `Pair`), and
/// the wire-level `FoldKind`/`FoldValue`. Surfaced at the root because
/// every layer's fold API is parameterized by them:
/// `core::BatchMsf::path_fold`, `query::QueryBatch::batch_path_fold`,
/// and `service::QueryReq::PathFold`.
pub use bimst_primitives::monoid;

/// Workload generators (re-export of `bimst-graphgen`).
pub use bimst_graphgen as graphgen;

/// Metrics and tracing: recorders, counters, histograms, span timers,
/// JSON / Prometheus snapshot export (re-export of `bimst-obs`). Every
/// layer above records into this subsystem when the default `obs`
/// feature is on; with `--no-default-features` the same API compiles to
/// nothing.
pub use bimst_obs as obs;
